//! `verdict-cli` — interactive SQL shell / one-shot client for a running
//! `verdict-server`.
//!
//! ```text
//! verdict-cli [--addr HOST:PORT] [SQL…]
//! ```
//!
//! With SQL arguments, runs each as one statement and exits.  Without, it
//! behaves like a database shell: statements may span multiple lines and are
//! sent when a line ends with `;`.  Everything is SQL — queries,
//! `CREATE SCRAMBLE … FROM …`, `SHOW SCRAMBLES`, `SHOW STATS`,
//! `BYPASS <stmt>`, `SET <option> = <value>`, `REFRESH SCRAMBLES …`,
//! `DROP SCRAMBLE[S] …`, `EXPLAIN [ANALYZE] <stmt>`, `SHOW PROFILE
//! [LAST n]`, `SHOW METRICS`.  `\q` (or `^D`) quits; `\?` prints help.
//! Result tables (including `SHOW` listings) are rendered column-aligned.

use std::io::{IsTerminal, Write};
use verdict_server::{RemoteAnswer, StreamFrame, VerdictClient};

/// Renders a result table column-aligned: each column as wide as its widest
/// cell (or header), numbers as sent by the server.
fn print_table(answer: &RemoteAnswer) {
    if answer.columns.is_empty() {
        return;
    }
    let mut widths: Vec<usize> = answer.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = answer
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", padded.join("  ").trim_end());
    };
    line(&answer.columns);
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in &rendered {
        line(row);
    }
}

fn print_answer(answer: &RemoteAnswer) {
    let h = &answer.header;
    print_table(answer);
    for (column, mean_rel, max_rel) in &answer.errors {
        println!("-- {column}: mean rel err {mean_rel:.4}, max rel err {max_rel:.4}");
    }
    for (key, value) in &answer.extras {
        println!("-- {key}: {value}");
    }
    println!(
        "-- {} row(s), {}{} in {} µs, {} rows scanned",
        h.rows,
        if h.exact { "exact" } else { "approximate" },
        if h.cached { " (cached)" } else { "" },
        h.elapsed_us,
        h.rows_scanned
    );
}

/// True when the statement should go through the streaming verb: it starts
/// with the `STREAM` keyword (the server then answers with `FRAME …` frames
/// the shell renders live, instead of one final `OK` frame).
fn is_stream_statement(sql: &str) -> bool {
    let trimmed = sql.trim_start();
    trimmed
        .split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case("stream"))
}

/// One-line summary of an intermediate frame: progress plus `est±err` for
/// single-row answers (the common global-aggregate case), or the group
/// count and worst relative error otherwise.
fn frame_summary(frame: &StreamFrame) -> String {
    let mut line = format!(
        "frame {:>3}  {:>5.1}%  {}/{} rows",
        frame.frame,
        100.0 * frame.fraction,
        frame.rows_seen,
        frame.total_rows
    );
    if frame.answer.rows.len() == 1 {
        for (i, name) in frame.answer.columns.iter().enumerate() {
            if name.ends_with("_err") {
                continue;
            }
            if let Some(v) = frame.answer.value(0, i).as_f64() {
                let err = frame
                    .answer
                    .columns
                    .iter()
                    .position(|c| c == &format!("{name}_err"))
                    .and_then(|j| frame.answer.value(0, j).as_f64());
                match err {
                    Some(e) => line.push_str(&format!("  {name}={v:.4}±{e:.4}")),
                    None => line.push_str(&format!("  {name}={v:.4}")),
                }
            }
        }
    } else {
        line.push_str(&format!("  {} group(s)", frame.answer.rows.len()));
    }
    if let Some((_, _, max_rel)) = frame.answer.errors.first() {
        line.push_str(&format!("  (max rel err {:.2}%)", 100.0 * max_rel));
    }
    line
}

/// Runs a `STREAM …` statement, rendering intermediate frames as a
/// live-updating line (in-place on a terminal, one line each otherwise) and
/// the final frame as a full result table.
fn run_stream(client: &mut VerdictClient, sql: &str) -> Result<(), verdict_server::ClientError> {
    let live = std::io::stdout().is_terminal();
    let frames = client.stream_with(sql, |frame| {
        if frame.last {
            if live {
                print!("\r\x1b[2K");
                let _ = std::io::stdout().flush();
            }
            return; // the final frame is printed as a full table below
        }
        if live {
            print!("\r\x1b[2K~ {}", frame_summary(frame));
            let _ = std::io::stdout().flush();
        } else {
            println!("~ {}", frame_summary(frame));
        }
    })?;
    if let Some(last) = frames.last() {
        print_answer(&last.answer);
        println!(
            "-- {} frame(s){}{}",
            frames.len(),
            if last.early_stopped {
                ", stopped early at the target error"
            } else {
                ""
            },
            if last.fraction < 1.0 {
                format!(" after {:.1}% of the scramble", 100.0 * last.fraction)
            } else {
                String::new()
            }
        );
    }
    Ok(())
}

/// True when the buffered text is a complete statement: it ends with `;`
/// *outside* any quoted string or identifier.  The scan tracks the three
/// quote forms the lexer accepts (`'…'`, `"…"`, `` `…` ``; doubling the
/// active quote is the escape form, which the toggle handles naturally), so
/// a `;` ending a line inside an unterminated literal keeps buffering
/// instead of sending half a statement.
fn statement_complete(buffer: &str) -> bool {
    let mut quote: Option<char> = None;
    for c in buffer.chars() {
        match quote {
            None if matches!(c, '\'' | '"' | '`') => quote = Some(c),
            Some(q) if c == q => quote = None,
            _ => {}
        }
    }
    quote.is_none() && buffer.trim_end().ends_with(';')
}

const HELP: &str = "\
every input is SQL, sent when a line ends with ';':
  SELECT …;                                    approximate query
  STREAM SELECT …;                             progressive query (live frames)
  BYPASS <statement>;                          exact execution
  CREATE SCRAMBLE <s> FROM <t> [METHOD m] [RATIO r] [ON cols];
  CREATE SCRAMBLES FROM <t>;                   recommended scramble set
  DROP SCRAMBLE <s>; / DROP SCRAMBLES <t>;
  REFRESH SCRAMBLES <t> [FROM <batch>];
  SHOW SCRAMBLES; / SHOW STATS;
  EXPLAIN [ANALYZE] <statement>;               plan (or executed span trace)
  SHOW PROFILE [LAST n]; / SHOW METRICS;       recent traces / text exposition
  SET <option> = <value>;                      e.g. SET target_error = 0.02
                                               (stream_block_rows, slow_query_ms)
\\q quits, \\? shows this help";

fn main() {
    let mut addr = "127.0.0.1:6688".to_string();
    let mut one_shot: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("verdict-cli: missing value for --addr");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: verdict-cli [--addr HOST:PORT] [SQL…]");
                std::process::exit(0);
            }
            sql => one_shot.push(sql.to_string()),
        }
    }

    let mut client = match VerdictClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verdict-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if !one_shot.is_empty() {
        for sql in one_shot {
            let result = if is_stream_statement(&sql) {
                run_stream(&mut client, &sql)
            } else {
                client.sql(&sql).map(|a| print_answer(&a))
            };
            if let Err(e) = result {
                eprintln!("verdict-cli: {e}");
                std::process::exit(1);
            }
        }
        let _ = client.quit();
        return;
    }

    eprintln!("connected to {addr}; statements end with ';', \\q quits, \\? for help");
    let stdin = std::io::stdin();
    let mut line = String::new();
    // Multi-line statement buffer: lines accumulate until one ends with ';'.
    let mut buffer = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            if trimmed.is_empty() {
                continue;
            }
            if trimmed == "\\q" || trimmed.eq_ignore_ascii_case("quit") {
                break;
            }
            if trimmed == "\\?" || trimmed.eq_ignore_ascii_case("help") {
                println!("{HELP}");
                continue;
            }
        }
        if !buffer.is_empty() {
            buffer.push('\n');
        }
        buffer.push_str(trimmed);
        if !statement_complete(&buffer) {
            // Statement incomplete (no ';' yet, or the ';' sits inside an
            // unterminated quoted string/identifier): keep buffering.
            continue;
        }
        let statement = std::mem::take(&mut buffer);
        let result = if is_stream_statement(&statement) {
            run_stream(&mut client, &statement)
        } else {
            client.sql(&statement).map(|a| print_answer(&a))
        };
        if let Err(e) = result {
            eprintln!("verdict-cli: {e}");
            if matches!(e, verdict_server::ClientError::Io(_)) {
                break;
            }
        }
    }
    let _ = client.quit();
}
