//! `verdict-cli` — interactive SQL shell / one-shot client for a running
//! `verdict-server`.
//!
//! ```text
//! verdict-cli [--addr HOST:PORT] [SQL…]
//! ```
//!
//! With SQL arguments, runs each as one statement and exits.  Without, it
//! behaves like a database shell: statements may span multiple lines and are
//! sent when a line ends with `;`.  Everything is SQL — queries,
//! `CREATE SCRAMBLE … FROM …`, `SHOW SCRAMBLES`, `SHOW STATS`,
//! `BYPASS <stmt>`, `SET <option> = <value>`, `REFRESH SCRAMBLES …`,
//! `DROP SCRAMBLE[S] …`.  `\q` (or `^D`) quits; `\?` prints help.  Result
//! tables (including `SHOW` listings) are rendered column-aligned.

use verdict_server::{RemoteAnswer, VerdictClient};

/// Renders a result table column-aligned: each column as wide as its widest
/// cell (or header), numbers as sent by the server.
fn print_table(answer: &RemoteAnswer) {
    if answer.columns.is_empty() {
        return;
    }
    let mut widths: Vec<usize> = answer.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = answer
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", padded.join("  ").trim_end());
    };
    line(&answer.columns);
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in &rendered {
        line(row);
    }
}

fn print_answer(answer: &RemoteAnswer) {
    let h = &answer.header;
    print_table(answer);
    for (column, mean_rel, max_rel) in &answer.errors {
        println!("-- {column}: mean rel err {mean_rel:.4}, max rel err {max_rel:.4}");
    }
    for (key, value) in &answer.extras {
        println!("-- {key}: {value}");
    }
    println!(
        "-- {} row(s), {}{} in {} µs, {} rows scanned",
        h.rows,
        if h.exact { "exact" } else { "approximate" },
        if h.cached { " (cached)" } else { "" },
        h.elapsed_us,
        h.rows_scanned
    );
}

/// True when the buffered text is a complete statement: it ends with `;`
/// *outside* any quoted string or identifier.  The scan tracks the three
/// quote forms the lexer accepts (`'…'`, `"…"`, `` `…` ``; doubling the
/// active quote is the escape form, which the toggle handles naturally), so
/// a `;` ending a line inside an unterminated literal keeps buffering
/// instead of sending half a statement.
fn statement_complete(buffer: &str) -> bool {
    let mut quote: Option<char> = None;
    for c in buffer.chars() {
        match quote {
            None if matches!(c, '\'' | '"' | '`') => quote = Some(c),
            Some(q) if c == q => quote = None,
            _ => {}
        }
    }
    quote.is_none() && buffer.trim_end().ends_with(';')
}

const HELP: &str = "\
every input is SQL, sent when a line ends with ';':
  SELECT …;                                    approximate query
  BYPASS <statement>;                          exact execution
  CREATE SCRAMBLE <s> FROM <t> [METHOD m] [RATIO r] [ON cols];
  CREATE SCRAMBLES FROM <t>;                   recommended scramble set
  DROP SCRAMBLE <s>; / DROP SCRAMBLES <t>;
  REFRESH SCRAMBLES <t> [FROM <batch>];
  SHOW SCRAMBLES; / SHOW STATS;
  SET <option> = <value>;                      e.g. SET target_error = 0.02
\\q quits, \\? shows this help";

fn main() {
    let mut addr = "127.0.0.1:6688".to_string();
    let mut one_shot: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("verdict-cli: missing value for --addr");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: verdict-cli [--addr HOST:PORT] [SQL…]");
                std::process::exit(0);
            }
            sql => one_shot.push(sql.to_string()),
        }
    }

    let mut client = match VerdictClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verdict-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if !one_shot.is_empty() {
        for sql in one_shot {
            match client.sql(&sql) {
                Ok(a) => print_answer(&a),
                Err(e) => {
                    eprintln!("verdict-cli: {e}");
                    std::process::exit(1);
                }
            }
        }
        let _ = client.quit();
        return;
    }

    eprintln!("connected to {addr}; statements end with ';', \\q quits, \\? for help");
    let stdin = std::io::stdin();
    let mut line = String::new();
    // Multi-line statement buffer: lines accumulate until one ends with ';'.
    let mut buffer = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            if trimmed.is_empty() {
                continue;
            }
            if trimmed == "\\q" || trimmed.eq_ignore_ascii_case("quit") {
                break;
            }
            if trimmed == "\\?" || trimmed.eq_ignore_ascii_case("help") {
                println!("{HELP}");
                continue;
            }
        }
        if !buffer.is_empty() {
            buffer.push('\n');
        }
        buffer.push_str(trimmed);
        if !statement_complete(&buffer) {
            // Statement incomplete (no ';' yet, or the ';' sits inside an
            // unterminated quoted string/identifier): keep buffering.
            continue;
        }
        let statement = std::mem::take(&mut buffer);
        match client.sql(&statement) {
            Ok(a) => print_answer(&a),
            Err(e) => {
                eprintln!("verdict-cli: {e}");
                if matches!(e, verdict_server::ClientError::Io(_)) {
                    break;
                }
            }
        }
    }
    let _ = client.quit();
}
