//! `verdict-cli` — interactive shell / one-shot client for a running
//! `verdict-server`.
//!
//! ```text
//! verdict-cli [--addr HOST:PORT] [SQL…]
//! ```
//!
//! With SQL arguments, runs them as `QUERY` requests and exits.  Without,
//! reads lines from stdin: raw protocol commands (`QUERY …`, `EXACT …`,
//! `SAMPLE …`, `REFRESH …`, `STATS`) pass through, and a bare SQL line is
//! shorthand for `QUERY <line>`.

use verdict_server::{RemoteAnswer, VerdictClient};

fn print_answer(answer: &RemoteAnswer) {
    let h = &answer.header;
    if !answer.columns.is_empty() {
        println!("{}", answer.columns.join("\t"));
        for row in &answer.rows {
            let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("{}", rendered.join("\t"));
        }
    }
    for (column, mean_rel, max_rel) in &answer.errors {
        println!("-- {column}: mean rel err {mean_rel:.4}, max rel err {max_rel:.4}");
    }
    for (key, value) in &answer.extras {
        println!("-- {key}: {value}");
    }
    println!(
        "-- {} row(s), {}{} in {} µs, {} rows scanned",
        h.rows,
        if h.exact { "exact" } else { "approximate" },
        if h.cached { " (cached)" } else { "" },
        h.elapsed_us,
        h.rows_scanned
    );
}

fn main() {
    let mut addr = "127.0.0.1:6688".to_string();
    let mut one_shot: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("verdict-cli: missing value for --addr");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: verdict-cli [--addr HOST:PORT] [SQL…]");
                std::process::exit(0);
            }
            sql => one_shot.push(sql.to_string()),
        }
    }

    let mut client = match VerdictClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verdict-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if !one_shot.is_empty() {
        for sql in one_shot {
            match client.query(&sql) {
                Ok(a) => print_answer(&a),
                Err(e) => {
                    eprintln!("verdict-cli: {e}");
                    std::process::exit(1);
                }
            }
        }
        let _ = client.quit();
        return;
    }

    eprintln!("connected to {addr}; enter SQL (or QUERY/EXACT/SAMPLE/REFRESH/STATS), ^D to quit");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let first_word = trimmed
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        let request = if matches!(
            first_word.as_str(),
            "QUERY" | "EXACT" | "SAMPLE" | "REFRESH" | "STATS" | "PING" | "QUIT"
        ) {
            trimmed.to_string()
        } else {
            format!("QUERY {trimmed}")
        };
        match client.request(&request) {
            Ok(a) => print_answer(&a),
            Err(e) => {
                eprintln!("verdict-cli: {e}");
                if matches!(e, verdict_server::ClientError::Io(_)) {
                    break;
                }
            }
        }
        if first_word == "QUIT" {
            break;
        }
    }
}
