//! `verdict-loadgen` — drives N concurrent protocol sessions against a
//! running `verdict-server` and reports throughput and tail latency.
//!
//! ```text
//! verdict-loadgen [--addr HOST:PORT] [--sessions N[,N,…]] [--requests M]
//!                 [--duration-secs S] [--sql SQL] [--stream] [--chaos P]
//!                 [--seed N] [--json-out FILE] [--shutdown]
//! ```
//!
//! Each session opens its own connection and issues `SQL` requests for the
//! same statement (default: a grouped average over the Instacart
//! `order_products` table — the dashboard-repeat shape the answer cache
//! targets).  `--sessions` takes a comma-separated list to sweep a
//! qps-vs-sessions curve (e.g. `--sessions 1,8,64,256,1024`); each point
//! runs either a fixed request count per session (`--requests`) or a fixed
//! wall-clock budget (`--duration-secs`, the sensible mode for large
//! session counts).  The report shows per-point qps plus p50/p99 request
//! latency, and `--json-out` merges the sweep into the given
//! `BENCH_kernels.json` as a top-level `serving_scale` section (preserving
//! everything else in the file).
//!
//! Alongside the client-measured latencies, each point scrapes the server's
//! own statement-duration histogram (`SHOW METRICS`) immediately before and
//! after the run and reports **server-side** p50/p99 computed from the
//! bucket-count deltas — the gap between the two is queueing plus wire
//! time.  Server percentiles are bucket upper bounds (power-of-two µs), so
//! they are coarser than the client's exact samples; a point where the
//! scrape fails (server mid-restart) reports them as 0.
//!
//! `--chaos P` injects a fault mix with probability `P` per iteration:
//! abrupt disconnects (no `QUIT`, immediate reconnect) and
//! deadline-exceeding statements (`SET deadline_ms = 1` on a cache-bypassed
//! query, expecting a typed `DEADLINE` refusal).  `--shutdown` ends the run
//! by sending the `SHUTDOWN` verb and waiting for the server to finish its
//! graceful drain — useful for soak tests that assert a clean exit.
//!
//! With `--stream`, every request goes through the multi-frame `STREAM`
//! verb instead of `SQL`: sessions hold their connection open while frames
//! arrive, which exercises the server under long-lived, interleaved
//! multi-frame responses.
//!
//! `--restart-mid-run "CMD ARGS…"` makes the loadgen manage the server
//! process itself: it spawns the given server command, waits until it
//! serves, runs the workload — and halfway through the run SIGKILLs the
//! server and respawns the same command, measuring **recovery time to
//! first answer**: wall-clock from the kill to the first successful
//! response from the restarted process.  Pointed at a `--data-dir` server
//! this measures WAL recovery plus cold-start scramble serving under live
//! traffic (sessions reconnect with patience across the outage).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use verdict_engine::Value;
use verdict_server::{ClientError, VerdictClient};

struct Options {
    addr: String,
    sessions: Vec<usize>,
    requests: usize,
    duration: Option<Duration>,
    sql: String,
    stream: bool,
    chaos: f64,
    seed: u64,
    json_out: Option<String>,
    shutdown: bool,
    restart_cmd: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:6688".into(),
            sessions: vec![4],
            requests: 200,
            duration: None,
            sql: "SELECT quantity, avg(price) AS ap FROM order_products \
                  GROUP BY quantity ORDER BY quantity"
                .into(),
            stream: false,
            chaos: 0.0,
            seed: 0x10adc3,
            json_out: None,
            shutdown: false,
            restart_cmd: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--sessions" => {
                opts.sessions = value("--sessions")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad --sessions: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.sessions.is_empty() {
                    return Err("--sessions needs at least one count".into());
                }
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--duration-secs" => {
                let secs: f64 = value("--duration-secs")?
                    .parse()
                    .map_err(|e| format!("bad --duration-secs: {e}"))?;
                opts.duration = Some(Duration::from_secs_f64(secs.max(0.01)));
            }
            "--sql" => opts.sql = value("--sql")?,
            "--stream" => opts.stream = true,
            "--chaos" => {
                opts.chaos = value("--chaos")?
                    .parse()
                    .map_err(|e| format!("bad --chaos: {e}"))?;
                if !(0.0..=1.0).contains(&opts.chaos) {
                    return Err("--chaos must be in [0, 1]".into());
                }
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json-out" => opts.json_out = Some(value("--json-out")?),
            "--shutdown" => opts.shutdown = true,
            "--restart-mid-run" => {
                let cmd = value("--restart-mid-run")?;
                if cmd.trim().is_empty() {
                    return Err("--restart-mid-run needs a server command".into());
                }
                opts.restart_cmd = Some(cmd);
            }
            "--help" | "-h" => {
                println!(
                    "usage: verdict-loadgen [--addr HOST:PORT] [--sessions N[,N,…]] \
                     [--requests M] [--duration-secs S] [--sql SQL] [--stream] \
                     [--chaos P] [--seed N] [--json-out FILE] [--shutdown] \
                     [--restart-mid-run \"SERVER CMD…\"]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

/// Tiny deterministic PRNG (LCG) so chaos runs are reproducible per seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() % 1_000_000) as f64 / 1_000_000.0 < p
    }
}

#[derive(Default)]
struct SessionOutcome {
    ok: u64,
    busy: u64,
    deadline: u64,
    disconnects: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// One measured point of the qps-vs-sessions curve.
struct Point {
    sessions: usize,
    wall_secs: f64,
    ok: u64,
    busy: u64,
    deadline: u64,
    disconnects: u64,
    errors: u64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    server_p50_us: u64,
    server_p99_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Parses one `verdict_statement_duration_us_bucket{…,le="…"} N` exposition
/// line into `(le_bound_us, cumulative_count)`.  `+Inf` maps to `u64::MAX`
/// so the bucket map stays ordered with the open bucket last.
fn parse_bucket_line(line: &str) -> Option<(u64, u64)> {
    let rest = line.strip_prefix("verdict_statement_duration_us_bucket{")?;
    let le_start = rest.find("le=\"")? + 4;
    let le_end = le_start + rest[le_start..].find('"')?;
    let le = match &rest[le_start..le_end] {
        "+Inf" => u64::MAX,
        s => s.parse().ok()?,
    };
    let count: u64 = rest.rsplit(' ').next()?.trim().parse().ok()?;
    Some((le, count))
}

/// Scrapes the server's statement-duration histogram over `SHOW METRICS`,
/// summing cumulative bucket counts across statement classes (every class
/// series shares the same bucket bounds, so the sum is still cumulative).
fn scrape_statement_buckets(addr: &str) -> Option<BTreeMap<u64, u64>> {
    let mut client = VerdictClient::connect(addr).ok()?;
    let answer = client.sql("SHOW METRICS").ok()?;
    let _ = client.quit();
    let mut buckets = BTreeMap::new();
    for row in &answer.rows {
        if let Some(Value::Str(line)) = row.first() {
            if let Some((le, count)) = parse_bucket_line(line) {
                *buckets.entry(le).or_insert(0u64) += count;
            }
        }
    }
    Some(buckets)
}

/// A percentile from the delta of two cumulative bucket scrapes: the upper
/// bound of the bucket holding the target rank (the `+Inf` bucket reports
/// the largest finite bound).  Counter resets (server restarted mid-point)
/// saturate to partial-but-non-negative deltas.
fn bucket_percentile(before: &BTreeMap<u64, u64>, after: &BTreeMap<u64, u64>, p: f64) -> u64 {
    let deltas: Vec<(u64, u64)> = after
        .iter()
        .map(|(&le, &c)| (le, c.saturating_sub(before.get(&le).copied().unwrap_or(0))))
        .collect();
    let total = deltas.last().map_or(0, |&(_, c)| c);
    if total == 0 {
        return 0;
    }
    let rank = ((p * total as f64).ceil() as u64).max(1);
    let mut last_finite = 0u64;
    for (le, cum) in deltas {
        if le != u64::MAX {
            last_finite = le;
        }
        if cum >= rank {
            return if le == u64::MAX { last_finite } else { le };
        }
    }
    last_finite
}

/// Reconnects to the server, retrying for up to `patience` (the server may
/// be mid-restart when `--restart-mid-run` is active).
fn reconnect(addr: &str, patience: Duration) -> Option<VerdictClient> {
    let t0 = Instant::now();
    loop {
        match VerdictClient::connect(addr) {
            Ok(c) => return Some(c),
            Err(_) if t0.elapsed() < patience => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    addr: &str,
    sql: &str,
    stream: bool,
    requests: usize,
    deadline: Option<Instant>,
    chaos: f64,
    seed: u64,
    patience: Duration,
) -> SessionOutcome {
    let mut out = SessionOutcome::default();
    let mut rng = Lcg(seed);
    let mut client = match reconnect(addr, patience) {
        Some(c) => c,
        None => {
            out.errors += 1;
            return out;
        }
    };
    let mut sent = 0usize;
    loop {
        match deadline {
            Some(d) => {
                if Instant::now() >= d {
                    break;
                }
            }
            None => {
                if sent >= requests {
                    break;
                }
            }
        }
        sent += 1;
        if chaos > 0.0 && rng.chance(chaos) {
            if rng.chance(0.5) {
                // Abrupt disconnect: drop the socket with no QUIT, then
                // come back as a brand-new session.
                drop(client);
                out.disconnects += 1;
                match reconnect(addr, patience) {
                    Some(c) => client = c,
                    None => {
                        out.errors += 1;
                        return out;
                    }
                }
                continue;
            }
            // Deadline-exceeding statement: a 1 ms deadline on a
            // cache-bypassed query, expecting a typed DEADLINE refusal.
            // (The SET itself can be refused BUSY under load; skip the
            // probe in that case.)
            if client.sql("SET deadline_ms = 1").is_ok() {
                match client.sql(&format!("BYPASS {sql}")) {
                    Ok(_) => {}
                    Err(ClientError::Deadline(_)) => out.deadline += 1,
                    Err(ClientError::Busy(_)) => out.busy += 1,
                    Err(_) => out.errors += 1,
                }
            }
            // Reconnect to restore default options: an in-band reset SET
            // would itself run under the 1 ms deadline and miss it.
            drop(client);
            match reconnect(addr, patience) {
                Some(c) => client = c,
                None => {
                    out.errors += 1;
                    return out;
                }
            }
            continue;
        }
        let t0 = Instant::now();
        let result = if stream {
            client.stream(sql).map(|_| ())
        } else {
            client.sql(sql).map(|_| ())
        };
        match result {
            Ok(()) => {
                out.ok += 1;
                out.latencies_us.push(t0.elapsed().as_micros() as u64);
            }
            Err(ClientError::Busy(_)) => out.busy += 1,
            Err(ClientError::Deadline(_)) => out.deadline += 1,
            Err(ClientError::Disconnected(_)) => {
                out.disconnects += 1;
                match reconnect(addr, patience) {
                    Some(c) => client = c,
                    None => return out,
                }
            }
            Err(_) => out.errors += 1,
        }
    }
    let _ = client.quit();
    out
}

fn run_point(opts: &Options, sessions: usize) -> Point {
    let before_buckets = scrape_statement_buckets(&opts.addr);
    let start = Instant::now();
    let wall_deadline = opts.duration.map(|d| start + d);
    // Sessions must survive the managed server's restart window.
    let patience = if opts.restart_cmd.is_some() {
        Duration::from_secs(30)
    } else {
        Duration::from_millis(500)
    };
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|sid| {
                let addr = &opts.addr;
                let sql = &opts.sql;
                let seed = opts
                    .seed
                    .wrapping_add(sid as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                scope.spawn(move || {
                    run_session(
                        addr,
                        sql,
                        opts.stream,
                        opts.requests,
                        wall_deadline,
                        opts.chaos,
                        seed,
                        patience,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let after_buckets = scrape_statement_buckets(&opts.addr);
    let (server_p50_us, server_p99_us) = match (&before_buckets, &after_buckets) {
        (Some(before), Some(after)) => (
            bucket_percentile(before, after, 0.50),
            bucket_percentile(before, after, 0.99),
        ),
        _ => (0, 0),
    };
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let ok: u64 = outcomes.iter().map(|o| o.ok).sum();
    Point {
        sessions,
        wall_secs,
        ok,
        busy: outcomes.iter().map(|o| o.busy).sum(),
        deadline: outcomes.iter().map(|o| o.deadline).sum(),
        disconnects: outcomes.iter().map(|o| o.disconnects).sum(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        qps: ok as f64 / wall_secs.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        server_p50_us,
        server_p99_us,
    }
}

/// Returns the byte span of `"key": { … }` (key through matching close
/// brace) in a JSON document whose string values contain no braces — true
/// for every value the bench harness writes.
fn block_span(json: &str, key: &str) -> Option<(usize, usize)> {
    let needle = format!("\"{key}\"");
    let start = json.find(&needle)?;
    let open = start + json[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, open + i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Merges `block` (the full `"serving_scale": { … }` text) into the JSON
/// file at `path` as a top-level key, replacing any existing block and
/// preserving every other section the bench harness wrote.
fn merge_serving_scale(path: &str, block: &str) -> std::io::Result<()> {
    let mut json = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    if let Some((start, end)) = block_span(&json, "serving_scale") {
        let bytes = json.as_bytes();
        // Eat the separator comma: the one before the block if present,
        // otherwise the one after it.
        let mut s = start;
        while s > 0 && bytes[s - 1].is_ascii_whitespace() {
            s -= 1;
        }
        let (s, mut e) = if s > 0 && bytes[s - 1] == b',' {
            (s - 1, end)
        } else {
            (start, end)
        };
        while e < json.len() && json.as_bytes()[e].is_ascii_whitespace() {
            e += 1;
        }
        let e = if s == start && e < json.len() && json.as_bytes()[e] == b',' {
            e + 1
        } else {
            end
        };
        json.replace_range(s..e, "");
    }
    let close = json
        .rfind('}')
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "not a JSON object"))?;
    let needs_comma = !json[..close].trim_end().ends_with('{');
    let insertion = format!("{}  {}\n", if needs_comma { ",\n" } else { "\n" }, block);
    let trimmed = json[..close].trim_end().len();
    json.replace_range(trimmed..close, &insertion);
    std::fs::write(path, json)
}

fn serving_scale_block(opts: &Options, points: &[Point]) -> String {
    let mut block = String::from("\"serving_scale\": {\n");
    block.push_str("    \"generated_by\": \"verdict-loadgen\",\n");
    block.push_str(&format!("    \"chaos\": {:.3},\n", opts.chaos));
    block.push_str(&format!("    \"stream\": {},\n", opts.stream));
    match opts.duration {
        Some(d) => block.push_str(&format!("    \"duration_secs\": {:.3},\n", d.as_secs_f64())),
        None => block.push_str(&format!(
            "    \"requests_per_session\": {},\n",
            opts.requests
        )),
    }
    block.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        block.push_str(&format!(
            "      {{ \"sessions\": {}, \"wall_secs\": {:.3}, \"qps\": {:.0}, \
             \"p50_us\": {}, \"p99_us\": {}, \
             \"server_p50_us\": {}, \"server_p99_us\": {}, \
             \"ok\": {}, \"busy\": {}, \"deadline\": {}, \"disconnects\": {}, \
             \"errors\": {} }}{}\n",
            p.sessions,
            p.wall_secs,
            p.qps,
            p.p50_us,
            p.p99_us,
            p.server_p50_us,
            p.server_p99_us,
            p.ok,
            p.busy,
            p.deadline,
            p.disconnects,
            p.errors,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    block.push_str("    ]\n  }");
    block
}

/// Spawns the managed server process for `--restart-mid-run` (command split
/// on whitespace; stdout silenced so the loadgen report stays readable).
fn spawn_server(cmd: &str) -> std::process::Child {
    let mut parts = cmd.split_whitespace();
    let bin = parts.next().expect("validated non-empty");
    match std::process::Command::new(bin)
        .args(parts)
        .stdout(std::process::Stdio::null())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => {
            eprintln!("verdict-loadgen: cannot spawn server `{cmd}`: {e}");
            std::process::exit(1);
        }
    }
}

/// Polls until the server at `addr` answers a PING, within `budget`.
fn wait_until_serving(addr: &str, budget: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        if let Ok(mut c) = VerdictClient::connect(addr) {
            if c.ping().is_ok() {
                let _ = c.quit();
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn cache_line(client: &mut VerdictClient) -> String {
    match client.stats() {
        Ok(s) => format!(
            "hits={} misses={} entries={} sessions_active={} shed={} refused={}",
            s.extra("cache_hits").unwrap_or("?"),
            s.extra("cache_misses").unwrap_or("?"),
            s.extra("cache_entries").unwrap_or("?"),
            s.extra("sessions_active").unwrap_or("?"),
            s.extra("queries_shed").unwrap_or("?"),
            s.extra("queries_refused").unwrap_or("?"),
        ),
        Err(e) => format!("unavailable ({e})"),
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("verdict-loadgen: {e}");
            std::process::exit(2);
        }
    };

    // With --restart-mid-run the loadgen owns the server process.
    let managed: Option<std::sync::Arc<std::sync::Mutex<std::process::Child>>> =
        opts.restart_cmd.as_ref().map(|cmd| {
            let child = spawn_server(cmd);
            if !wait_until_serving(&opts.addr, Duration::from_secs(60)) {
                eprintln!(
                    "verdict-loadgen: managed server never came up at {}",
                    opts.addr
                );
                std::process::exit(1);
            }
            std::sync::Arc::new(std::sync::Mutex::new(child))
        });

    let mut probe = match VerdictClient::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verdict-loadgen: cannot connect to {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!("server before: {}", cache_line(&mut probe));

    // Kill-and-respawn fires from a side thread while the workload runs;
    // the measurement is wall-clock from SIGKILL to the first successful
    // answer out of the restarted process (WAL recovery + cold start +
    // first query, under live reconnecting traffic).
    let restart_handle = managed.as_ref().map(|child| {
        let child = std::sync::Arc::clone(child);
        let cmd = opts.restart_cmd.clone().expect("managed implies cmd");
        let addr = opts.addr.clone();
        let sql = opts.sql.clone();
        let delay = opts
            .duration
            .map(|d| d / 2)
            .unwrap_or(Duration::from_secs(1));
        std::thread::spawn(move || -> Option<Duration> {
            std::thread::sleep(delay);
            let t0 = Instant::now();
            {
                let mut c = child.lock().expect("child lock");
                let _ = c.kill();
                let _ = c.wait();
                *c = spawn_server(&cmd);
            }
            while t0.elapsed() < Duration::from_secs(120) {
                if let Ok(mut probe) = VerdictClient::connect(&addr) {
                    if probe.sql(&sql).is_ok() {
                        let _ = probe.quit();
                        return Some(t0.elapsed());
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            None
        })
    });

    let mut points = Vec::with_capacity(opts.sessions.len());
    println!(
        "| sessions | q/s | p50 (µs) | p99 (µs) | srv p50 (µs) | srv p99 (µs) \
         | ok | busy | deadline | disconnects | errors |"
    );
    println!(
        "|---------:|----:|---------:|---------:|-------------:|-------------:\
         |---:|-----:|---------:|------------:|-------:|"
    );
    for &n in &opts.sessions {
        let p = run_point(&opts, n);
        println!(
            "| {} | {:.0} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            p.sessions,
            p.qps,
            p.p50_us,
            p.p99_us,
            p.server_p50_us,
            p.server_p99_us,
            p.ok,
            p.busy,
            p.deadline,
            p.disconnects,
            p.errors
        );
        points.push(p);
    }

    if let Some(handle) = restart_handle {
        match handle.join().expect("restart thread panicked") {
            Some(d) => println!(
                "restart mid-run: recovery to first answer {} ms",
                d.as_millis()
            ),
            None => {
                eprintln!("verdict-loadgen: restarted server never answered");
                std::process::exit(1);
            }
        }
        // The pre-restart probe connection died with the old process.
        match reconnect(&opts.addr, Duration::from_secs(5)) {
            Some(c) => probe = c,
            None => {
                eprintln!("verdict-loadgen: cannot reconnect after restart");
                std::process::exit(1);
            }
        }
    }

    println!("server after: {}", cache_line(&mut probe));
    let _ = probe.quit();

    if let Some(path) = &opts.json_out {
        let block = serving_scale_block(&opts, &points);
        match merge_serving_scale(path, &block) {
            Ok(()) => println!("merged serving_scale into {path}"),
            Err(e) => {
                eprintln!("verdict-loadgen: cannot update {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if opts.shutdown {
        // Graceful drain: the acknowledgement arrives immediately; the
        // subsequent read observing a clean close is the drain completing.
        match VerdictClient::connect(&opts.addr) {
            Ok(mut c) => {
                if let Err(e) = c.shutdown_server() {
                    eprintln!("verdict-loadgen: SHUTDOWN failed: {e}");
                    std::process::exit(1);
                }
                match c.ping() {
                    // Any failure after the SHUTDOWN acknowledgement means
                    // the connection went down with the drain (surfaced as
                    // Disconnected, a SHUTDOWN-typed refusal, or a raw
                    // broken-pipe io error depending on timing).
                    Err(_) => println!("server drained"),
                    Ok(()) => println!("server acknowledged drain (still flushing)"),
                }
            }
            Err(e) => {
                eprintln!("verdict-loadgen: cannot connect for shutdown: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(child) = managed {
        let mut c = child.lock().expect("child lock");
        if opts.shutdown {
            // The drain above stops the managed process; reap it cleanly.
            let _ = c.wait();
        } else {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}
