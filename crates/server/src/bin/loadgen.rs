//! `verdict-loadgen` — drives N concurrent protocol sessions against a
//! running `verdict-server` and reports aggregate throughput.
//!
//! ```text
//! verdict-loadgen [--addr HOST:PORT] [--sessions N] [--requests M] [--sql SQL]
//! ```
//!
//! Each session opens its own connection and issues `--requests` `SQL`
//! requests for the same statement (default: a grouped average over the
//! Instacart `order_products` table — the dashboard-repeat shape the answer
//! cache targets).  Prints per-session and aggregate queries/second plus the
//! server's cache counters (`SHOW STATS`) before and after the run.

use std::time::Instant;
use verdict_server::VerdictClient;

struct Options {
    addr: String,
    sessions: usize,
    requests: usize,
    sql: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:6688".into(),
            sessions: 4,
            requests: 200,
            sql: "SELECT quantity, avg(price) AS ap FROM order_products \
                  GROUP BY quantity ORDER BY quantity"
                .into(),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--sessions" => {
                opts.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--sql" => opts.sql = value("--sql")?,
            "--help" | "-h" => {
                println!(
                    "usage: verdict-loadgen [--addr HOST:PORT] [--sessions N] \
                     [--requests M] [--sql SQL]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn cache_line(client: &mut VerdictClient) -> String {
    match client.stats() {
        Ok(s) => format!(
            "hits={} misses={} entries={}",
            s.extra("cache_hits").unwrap_or("?"),
            s.extra("cache_misses").unwrap_or("?"),
            s.extra("cache_entries").unwrap_or("?"),
        ),
        Err(e) => format!("unavailable ({e})"),
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("verdict-loadgen: {e}");
            std::process::exit(2);
        }
    };

    let mut probe = match VerdictClient::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verdict-loadgen: cannot connect to {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!("cache before: {}", cache_line(&mut probe));

    let start = Instant::now();
    let per_session: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.sessions)
            .map(|sid| {
                let addr = opts.addr.clone();
                let sql = opts.sql.clone();
                let requests = opts.requests;
                scope.spawn(move || {
                    let mut client = VerdictClient::connect(&addr).expect("connect");
                    let t0 = Instant::now();
                    let mut ok = 0usize;
                    for _ in 0..requests {
                        if client.sql(&sql).is_ok() {
                            ok += 1;
                        }
                    }
                    let secs = t0.elapsed().as_secs_f64();
                    let _ = client.quit();
                    (sid, ok, secs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (sid, ok, secs) = h.join().expect("session thread");
                (sid, ok as f64 / secs.max(1e-9))
            })
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();

    for (sid, qps) in &per_session {
        println!("session {sid}: {qps:.0} q/s");
    }
    let total_requests = opts.sessions * opts.requests;
    println!(
        "aggregate: {} requests over {} sessions in {:.3}s = {:.0} q/s",
        total_requests,
        opts.sessions,
        wall,
        total_requests as f64 / wall.max(1e-9)
    );
    println!("cache after: {}", cache_line(&mut probe));
    let _ = probe.quit();
}
