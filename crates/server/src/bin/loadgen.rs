//! `verdict-loadgen` — drives N concurrent protocol sessions against a
//! running `verdict-server` and reports aggregate throughput.
//!
//! ```text
//! verdict-loadgen [--addr HOST:PORT] [--sessions N] [--requests M] [--sql SQL] [--stream]
//! ```
//!
//! Each session opens its own connection and issues `--requests` `SQL`
//! requests for the same statement (default: a grouped average over the
//! Instacart `order_products` table — the dashboard-repeat shape the answer
//! cache targets).  Prints per-session and aggregate queries/second plus the
//! server's cache counters (`SHOW STATS`) before and after the run.
//!
//! With `--stream`, every request goes through the multi-frame `STREAM`
//! verb instead of `SQL`: sessions hold their connection open while frames
//! arrive, which exercises the server under long-lived, interleaved
//! multi-frame responses.  The report then also shows aggregate
//! frames/second and the mean frames per stream.

use std::time::Instant;
use verdict_server::VerdictClient;

struct Options {
    addr: String,
    sessions: usize,
    requests: usize,
    sql: String,
    stream: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:6688".into(),
            sessions: 4,
            requests: 200,
            sql: "SELECT quantity, avg(price) AS ap FROM order_products \
                  GROUP BY quantity ORDER BY quantity"
                .into(),
            stream: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--sessions" => {
                opts.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--sql" => opts.sql = value("--sql")?,
            "--stream" => opts.stream = true,
            "--help" | "-h" => {
                println!(
                    "usage: verdict-loadgen [--addr HOST:PORT] [--sessions N] \
                     [--requests M] [--sql SQL] [--stream]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn cache_line(client: &mut VerdictClient) -> String {
    match client.stats() {
        Ok(s) => format!(
            "hits={} misses={} entries={}",
            s.extra("cache_hits").unwrap_or("?"),
            s.extra("cache_misses").unwrap_or("?"),
            s.extra("cache_entries").unwrap_or("?"),
        ),
        Err(e) => format!("unavailable ({e})"),
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("verdict-loadgen: {e}");
            std::process::exit(2);
        }
    };

    let mut probe = match VerdictClient::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verdict-loadgen: cannot connect to {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!("cache before: {}", cache_line(&mut probe));

    let start = Instant::now();
    let per_session: Vec<(usize, f64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.sessions)
            .map(|sid| {
                let addr = opts.addr.clone();
                let sql = opts.sql.clone();
                let requests = opts.requests;
                let stream = opts.stream;
                scope.spawn(move || {
                    let mut client = VerdictClient::connect(&addr).expect("connect");
                    let t0 = Instant::now();
                    let mut ok = 0usize;
                    let mut frames = 0usize;
                    for _ in 0..requests {
                        if stream {
                            if let Ok(received) = client.stream(&sql) {
                                ok += 1;
                                frames += received.len();
                            }
                        } else if client.sql(&sql).is_ok() {
                            ok += 1;
                        }
                    }
                    let secs = t0.elapsed().as_secs_f64();
                    let _ = client.quit();
                    (sid, ok, secs, frames)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (sid, ok, secs, frames) = h.join().expect("session thread");
                (sid, ok as f64 / secs.max(1e-9), frames)
            })
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();

    for (sid, qps, _) in &per_session {
        println!("session {sid}: {qps:.0} q/s");
    }
    let total_requests = opts.sessions * opts.requests;
    println!(
        "aggregate: {} requests over {} sessions in {:.3}s = {:.0} q/s",
        total_requests,
        opts.sessions,
        wall,
        total_requests as f64 / wall.max(1e-9)
    );
    if opts.stream {
        let total_frames: usize = per_session.iter().map(|(_, _, f)| f).sum();
        println!(
            "streaming: {} frames total = {:.0} frames/s, {:.1} frames per stream",
            total_frames,
            total_frames as f64 / wall.max(1e-9),
            total_frames as f64 / (total_requests as f64).max(1.0)
        );
    }
    println!("cache after: {}", cache_line(&mut probe));
    let _ = probe.quit();
}
