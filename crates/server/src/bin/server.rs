//! `verdict-server` — load a dataset into the in-memory engine, build
//! samples, and serve the VerdictDB wire protocol over TCP.
//!
//! ```text
//! verdict-server [--addr HOST:PORT] [--dataset instacart|tpch] [--scale F]
//!                [--cache N] [--seed N] [--no-samples] [--data-dir DIR]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:6688 --dataset instacart --scale 0.05
//! --cache 256 --seed 7`.  With samples enabled (the default) a uniform
//! sample is built for every base table large enough to sample, so `QUERY`
//! requests are answered approximately out of the box.
//!
//! With `--data-dir DIR` (or env `VERDICT_DATA_DIR`) scrambles persist in a
//! crash-safe on-disk store: WAL recovery runs at startup, previously built
//! scrambles and their metadata reload without touching the base tables,
//! and the server answers approximate queries immediately after a restart —
//! bit-identically to the pre-restart answers.

use std::sync::Arc;
use verdict_core::{VerdictConfig, VerdictContext, VerdictResponse, VerdictSession};
use verdict_engine::{Backend, Engine};
use verdict_server::VerdictServer;

struct Options {
    addr: String,
    dataset: String,
    scale: f64,
    cache: usize,
    seed: u64,
    samples: bool,
    data_dir: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:6688".into(),
            dataset: "instacart".into(),
            scale: 0.05,
            cache: 256,
            seed: 7,
            samples: true,
            data_dir: std::env::var("VERDICT_DATA_DIR")
                .ok()
                .filter(|d| !d.is_empty()),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--dataset" => opts.dataset = value("--dataset")?,
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--cache" => {
                opts.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("bad --cache: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--no-samples" => opts.samples = false,
            "--data-dir" => opts.data_dir = Some(value("--data-dir")?),
            "--help" | "-h" => {
                println!(
                    "usage: verdict-server [--addr HOST:PORT] [--dataset instacart|tpch] \
                     [--scale F] [--cache N] [--seed N] [--no-samples] [--data-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("verdict-server: {e}");
            std::process::exit(2);
        }
    };

    let engine = Engine::with_seed(opts.seed);
    let tables: Vec<&str> = match opts.dataset.as_str() {
        "instacart" => {
            verdict_data::InstacartGenerator::new(opts.scale).register(&engine);
            vec!["orders", "order_products", "products"]
        }
        "tpch" => {
            verdict_data::TpchGenerator::new(opts.scale).register(&engine);
            vec!["lineitem", "tpch_orders", "customer", "part", "supplier"]
        }
        other => {
            eprintln!("verdict-server: unknown dataset {other} (instacart|tpch)");
            std::process::exit(2);
        }
    };
    for t in &tables {
        let rows = engine.catalog().row_count(t);
        println!("loaded {t}: {rows} rows");
    }

    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = opts.cache;
    config.seed = Some(opts.seed);

    // Attach the persistent store (if any) to the engine catalog BEFORE the
    // context reloads metadata, so persisted scramble tables are visible
    // through SQL and lazily load off disk on first touch.
    let store = match &opts.data_dir {
        Some(dir) => match verdict_store::Store::open(dir) {
            Ok(store) => {
                let store = Arc::new(store);
                engine
                    .catalog()
                    .set_store(Arc::clone(&store) as Arc<dyn verdict_engine::StoreHandle>);
                let stats = store.stats();
                println!(
                    "store {dir}: {} table(s), {} recovery replay(s)",
                    store.tables().len(),
                    stats.recoveries
                );
                Some(store)
            }
            Err(e) => {
                eprintln!("verdict-server: cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    let conn: Arc<dyn Backend> = Arc::new(engine);
    let ctx = match store {
        Some(store) => match VerdictContext::with_store(conn, config, store) {
            Ok(ctx) => Arc::new(ctx),
            Err(e) => {
                eprintln!("verdict-server: cannot reload persisted metadata: {e}");
                std::process::exit(1);
            }
        },
        None => Arc::new(VerdictContext::new(conn, config)),
    };
    for meta in ctx.meta().all() {
        println!(
            "restored scramble {}: {} rows (τ = {})",
            meta.sample_table, meta.sample_rows, meta.ratio
        );
    }

    if opts.samples {
        // Sample preparation is plain SQL, exactly what a client would send.
        let mut session = VerdictSession::new(Arc::clone(&ctx));
        for t in &tables {
            // A scramble restored from the store serves as-is: rebuilding it
            // here would defeat cold-start serving (and change answers).
            if !ctx.meta().samples_for(t).is_empty() {
                continue;
            }
            let ddl = format!("CREATE SCRAMBLE verdict_sample_{t}_uniform FROM {t}");
            match session.execute(&ddl) {
                Ok(VerdictResponse::ScramblesCreated(metas)) => {
                    for meta in metas {
                        println!(
                            "scramble {}: {} rows (τ = {})",
                            meta.sample_table, meta.sample_rows, meta.ratio
                        );
                    }
                }
                Ok(_) => unreachable!("CREATE SCRAMBLE returns ScramblesCreated"),
                Err(e) => println!("no scramble for {t}: {e}"),
            }
        }
    }

    let server = match VerdictServer::bind(&opts.addr, ctx) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("verdict-server: cannot bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("serving on {addr} (cache capacity {})", opts.cache),
        Err(_) => println!("serving on {}", opts.addr),
    }
    // serve_forever returns after a graceful drain: a SHUTDOWN request stops
    // the accept loop, in-flight statements finish, responses flush, and
    // every worker joins before control comes back here.
    if let Err(e) = server.serve_forever() {
        eprintln!("verdict-server: serving failed: {e}");
        std::process::exit(1);
    }
    println!("drained; exiting");
}
