//! Blocking TCP client for the VerdictDB wire protocol.
//!
//! One [`VerdictClient`] is one protocol *session*: a dedicated connection
//! whose requests are answered in order.  Many clients may be connected at
//! once; the server multiplexes them on its I/O shards over the shared
//! engine.
//!
//! Server-side admission control surfaces here as typed errors: a refused
//! statement is [`ClientError::Busy`], a missed `deadline_ms` is
//! [`ClientError::Deadline`].  A dead or vanished server is
//! [`ClientError::Disconnected`] — and with [`VerdictClient::set_read_timeout`]
//! a server that stops responding mid-frame becomes
//! [`ClientError::TimedOut`] instead of a forever-blocked read.

use crate::protocol::{
    parse_stream_done, parse_type_tag, parse_value, split_error_code, unescape_field, ErrorCode,
    FrameHeader, StreamFrameHeader, FRAME_END, NULL_FIELD,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use verdict_engine::{DataType, Value};

/// A parsed response frame.
#[derive(Debug, Clone, Default)]
pub struct RemoteAnswer {
    /// Status-line header (row/column counts, exact/cached flags, timings).
    pub header: FrameHeader,
    /// Column names (empty for row-less frames).
    pub columns: Vec<String>,
    /// Column types, parallel to `columns`.
    pub types: Vec<DataType>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Per-aggregate error summaries: `(column, mean_rel, max_rel)`.
    pub errors: Vec<(String, f64, f64)>,
    /// Informational `S key value` lines (cache stats, sample names, …).
    pub extras: Vec<(String, String)>,
}

impl RemoteAnswer {
    /// Looks up an `S` line by key.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value at (row, col).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }
}

/// One frame of a `STREAM` response: a regular answer plus the stream
/// position metadata from the `FRAME …` status line.
#[derive(Debug, Clone, Default)]
pub struct StreamFrame {
    /// The answer for the scramble prefix seen so far (rows, types, error
    /// summaries — same shape as a one-shot [`RemoteAnswer`]).
    pub answer: RemoteAnswer,
    /// 1-based frame number.
    pub frame: usize,
    /// Scramble rows consumed when the frame was assembled.
    pub rows_seen: u64,
    /// Scramble rows a run to completion would consume.
    pub total_rows: u64,
    /// `rows_seen / total_rows` (1.0 on completed / single-frame streams).
    pub fraction: f64,
    /// True on the stream's final frame.
    pub last: bool,
    /// True when the stream stopped early at the session's `target_error`.
    pub early_stopped: bool,
}

/// Error from a client call: transport failure, a malformed frame, or an
/// `ERR` frame from the server (typed refusals get their own variants).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent an unparseable frame.
    Protocol(String),
    /// The server answered with an untyped `ERR` frame.
    Server(String),
    /// Admission control refused the statement (`ERR BUSY …`): the server's
    /// run queue is at capacity.  Retry with backoff.
    Busy(String),
    /// The statement's `deadline_ms` passed before a complete answer could
    /// be delivered (`ERR DEADLINE …`).
    Deadline(String),
    /// The server closed the connection (graceful close, crash, or a drain
    /// finishing).  The session is gone; reconnect to continue.
    Disconnected(String),
    /// No bytes arrived within the configured read timeout (see
    /// [`VerdictClient::set_read_timeout`]).  The connection may be
    /// mid-frame and is no longer usable for further requests.
    TimedOut(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Busy(m) => write!(f, "server busy: {m}"),
            ClientError::Deadline(m) => write!(f, "deadline exceeded: {m}"),
            ClientError::Disconnected(m) => write!(f, "disconnected: {m}"),
            ClientError::TimedOut(m) => write!(f, "timed out: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Why a multi-line request cannot be safely collapsed to one line, or
/// `None` when collapsing preserves its meaning.  The scan tracks the three
/// quote forms the lexer accepts (`'…'` literals, `"…"` and `` `…` ``
/// identifiers; doubling the active quote is the escape form, which the
/// toggle handles naturally) and `--` line comments, whose extent *depends
/// on the line breaks* being collapsed.
fn multiline_collapse_hazard(s: &str) -> Option<&'static str> {
    let mut quote: Option<char> = None;
    let mut prev = '\0';
    for c in s.chars() {
        match (quote, c) {
            (None, '\'' | '"' | '`') => quote = Some(c),
            (None, '-') if prev == '-' => {
                return Some("it contains a `--` line comment, whose extent would change");
            }
            (Some(q), _) if c == q => quote = None,
            (Some(_), '\n' | '\r') => {
                return Some("it contains a line break inside a quoted string or identifier");
            }
            _ => {}
        }
        prev = c;
    }
    None
}

/// One protocol session over a TCP connection.
pub struct VerdictClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl VerdictClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<VerdictClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(VerdictClient {
            reader,
            writer: stream,
        })
    }

    /// Executes one SQL statement on the connection's server-side session
    /// (`SQL` command) — the whole VerdictDB surface: queries, `CREATE
    /// SCRAMBLE …`, `DROP SCRAMBLE[S] …`, `REFRESH SCRAMBLE[S] …`,
    /// `SHOW SCRAMBLES`, `SHOW STATS`, `BYPASS <stmt>`, and `SET <option> =
    /// <value>` (session-scoped: options persist for this connection).
    pub fn sql(&mut self, statement: &str) -> ClientResult<RemoteAnswer> {
        self.request(&format!("SQL {statement}"))
    }

    /// Executes a query approximately when possible.  Equivalent to
    /// [`Self::sql`]; kept as a convenience for query-only callers.
    pub fn query(&mut self, sql: &str) -> ClientResult<RemoteAnswer> {
        self.sql(sql)
    }

    /// Executes a statement exactly on the base tables (`BYPASS` wrapper);
    /// also the path for DDL/DML such as `INSERT INTO … SELECT`.
    pub fn exact(&mut self, sql: &str) -> ClientResult<RemoteAnswer> {
        self.sql(&format!("BYPASS {sql}"))
    }

    /// Builds a sample table server-side.
    ///
    /// Deprecated alias: sends the legacy `SAMPLE` verb, which the server
    /// rewrites into `CREATE SCRAMBLE … FROM … METHOD …`.  New code should
    /// issue that SQL through [`Self::sql`] directly.
    pub fn create_sample(
        &mut self,
        table: &str,
        sample_type: &str,
        columns: &[&str],
    ) -> ClientResult<RemoteAnswer> {
        let mut line = format!("SAMPLE {table} {sample_type}");
        if !columns.is_empty() {
            line.push(' ');
            line.push_str(&columns.join(","));
        }
        self.request(&line)
    }

    /// Folds an appended batch into every sample of a base table
    /// (`REFRESH SCRAMBLES <base> FROM <batch>`).
    pub fn refresh(&mut self, base_table: &str, batch_table: &str) -> ClientResult<RemoteAnswer> {
        self.sql(&format!(
            "REFRESH SCRAMBLES {base_table} FROM {batch_table}"
        ))
    }

    /// Fetches middleware + server statistics (`SHOW STATS`).
    pub fn stats(&mut self) -> ClientResult<RemoteAnswer> {
        self.sql("SHOW STATS")
    }

    /// Round-trip liveness check (`PING`).  Answered on the server's I/O
    /// shards directly, so it succeeds even when the run queue is full.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.request("PING").map(|_| ())
    }

    /// Asks the server to drain gracefully (`SHUTDOWN`): stop accepting,
    /// finish in-flight statements, flush responses, then close.  The
    /// acknowledgement frame arrives before the drain completes.
    pub fn shutdown_server(&mut self) -> ClientResult<RemoteAnswer> {
        self.request("SHUTDOWN")
    }

    /// Bounds every read on this connection: when the server produces no
    /// bytes for `timeout`, calls fail with [`ClientError::TimedOut`]
    /// instead of blocking forever on a dead or wedged server.  `None`
    /// restores unbounded blocking reads.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> ClientResult<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Ends the session gracefully (`QUIT`).
    pub fn quit(mut self) -> ClientResult<()> {
        self.request("QUIT").map(|_| ())
    }

    /// Sends one request line and reads one response frame.
    ///
    /// The protocol is strictly one line per request, so embedded line
    /// breaks (legal in SQL, fatal to the framing) are collapsed to spaces —
    /// otherwise the server would treat the text as several requests and
    /// every later response on this session would answer the wrong call.
    /// Two constructs cannot be collapsed without changing the query's
    /// meaning and are rejected loudly instead: a line break inside a quoted
    /// string/identifier, and a `--` line comment (collapsing would swallow
    /// the rest of the statement into the comment).
    pub fn request(&mut self, line: &str) -> ClientResult<RemoteAnswer> {
        self.send_line(line)?;
        self.read_frame()
    }

    /// Runs a query as a progressive stream (`STREAM` verb), returning every
    /// frame; the last one carries the final answer.  See
    /// [`Self::stream_with`] to observe frames as they arrive.
    pub fn stream(&mut self, sql: &str) -> ClientResult<Vec<StreamFrame>> {
        self.stream_with(sql, |_| {})
    }

    /// Runs a query as a progressive stream (`STREAM` verb), invoking
    /// `on_frame` for every frame **as it is read off the socket** — the
    /// estimate±CI refines in real time — and returning the full frame list
    /// once the server's `DONE` arrives.  `sql` may be a plain `SELECT …` or
    /// the `STREAM SELECT …` statement form.
    pub fn stream_with(
        &mut self,
        sql: &str,
        mut on_frame: impl FnMut(&StreamFrame),
    ) -> ClientResult<Vec<StreamFrame>> {
        self.send_line(&format!("STREAM {sql}"))?;
        let mut frames: Vec<StreamFrame> = Vec::new();
        loop {
            let status = self.read_line()?;
            if let Some(msg) = status.strip_prefix("ERR ") {
                self.drain_frame()?;
                return Err(Self::server_error(msg));
            }
            if parse_stream_done(&status).is_some() {
                self.drain_frame()?;
                return Ok(frames);
            }
            let header = StreamFrameHeader::parse(&status)
                .ok_or_else(|| ClientError::Protocol(format!("bad stream status: {status}")))?;
            let answer = self.read_frame_body(header.base)?;
            let frame = StreamFrame {
                answer,
                frame: header.frame,
                rows_seen: header.rows_seen,
                total_rows: header.total_rows,
                fraction: header.fraction,
                last: header.last,
                early_stopped: header.early_stopped,
            };
            on_frame(&frame);
            frames.push(frame);
        }
    }

    /// Sends one request line, collapsing embedded line breaks (see
    /// [`Self::request`] for why, and when collapsing is refused).
    fn send_line(&mut self, line: &str) -> ClientResult<()> {
        let line = if line.contains(['\n', '\r']) {
            if let Some(reason) = multiline_collapse_hazard(line) {
                return Err(ClientError::Protocol(format!(
                    "multi-line request cannot be sent over the line-based protocol: {reason}"
                )));
            }
            std::borrow::Cow::Owned(line.replace(['\n', '\r'], " "))
        } else {
            std::borrow::Cow::Borrowed(line)
        };
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads and discards body lines up to the frame terminator.
    fn drain_frame(&mut self) -> ClientResult<()> {
        loop {
            if self.read_line()? == FRAME_END {
                return Ok(());
            }
        }
    }

    fn read_line(&mut self) -> ClientResult<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| {
            match e.kind() {
                // A read timeout (set via `set_read_timeout`) surfaces as
                // WouldBlock or TimedOut depending on the platform.
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    ClientError::TimedOut("no response within the read timeout".into())
                }
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe => {
                    ClientError::Disconnected(format!("connection lost: {e}"))
                }
                _ => ClientError::Io(e),
            }
        })?;
        if n == 0 {
            return Err(ClientError::Disconnected(
                "server closed the connection".into(),
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Maps an `ERR` payload onto the matching error variant: typed `BUSY`
    /// and `DEADLINE` refusals get their own variants, everything else
    /// (including `SHUTDOWN`, which callers usually treat as a disconnect
    /// about to happen) stays a [`ClientError::Server`].
    fn server_error(payload: &str) -> ClientError {
        let message = unescape_field(payload);
        match split_error_code(&message) {
            (Some(ErrorCode::Busy), rest) => ClientError::Busy(rest.to_string()),
            (Some(ErrorCode::Deadline), rest) => ClientError::Deadline(rest.to_string()),
            _ => ClientError::Server(message),
        }
    }

    fn read_frame(&mut self) -> ClientResult<RemoteAnswer> {
        let status = self.read_line()?;
        if let Some(msg) = status.strip_prefix("ERR ") {
            // Drain the terminator before reporting, keeping the stream in sync.
            self.drain_frame()?;
            return Err(Self::server_error(msg));
        }
        let header = FrameHeader::parse(&status)
            .ok_or_else(|| ClientError::Protocol(format!("bad status line: {status}")))?;
        self.read_frame_body(header)
    }

    /// Reads the `C`/`T`/`R`/`E`/`S` body lines of one frame up to the
    /// terminator, under an already-parsed status header.
    fn read_frame_body(&mut self, header: FrameHeader) -> ClientResult<RemoteAnswer> {
        let mut answer = RemoteAnswer {
            header,
            ..RemoteAnswer::default()
        };
        loop {
            let line = self.read_line()?;
            if line == FRAME_END {
                break;
            }
            let (tag, body) = match line.split_once(' ') {
                Some((t, b)) => (t, b),
                None => (line.as_str(), ""),
            };
            match tag {
                "C" => {
                    answer.columns = body.split('\t').map(unescape_field).collect();
                }
                "T" => {
                    answer.types = body.split('\t').map(parse_type_tag).collect();
                }
                "R" => {
                    let row: Vec<Value> = body
                        .split('\t')
                        .enumerate()
                        .map(|(i, field)| {
                            let dt = answer.types.get(i).copied().unwrap_or(DataType::Str);
                            parse_value(field, dt)
                        })
                        .collect();
                    answer.rows.push(row);
                }
                "E" => {
                    let mut parts = body.split('\t');
                    let column = unescape_field(parts.next().unwrap_or(NULL_FIELD));
                    let mean_rel = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(f64::NAN);
                    let max_rel = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(f64::NAN);
                    answer.errors.push((column, mean_rel, max_rel));
                }
                "S" => {
                    let (k, v) = body.split_once(' ').unwrap_or((body, ""));
                    answer.extras.push((unescape_field(k), unescape_field(v)));
                }
                other => {
                    return Err(ClientError::Protocol(format!("unknown frame tag {other}")));
                }
            }
        }
        Ok(answer)
    }
}
