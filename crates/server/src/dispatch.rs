//! Statement execution on the worker pool.
//!
//! One [`Task`] is one admitted request line: the worker locks the
//! connection's session, applies the statement's shed tier, executes, and
//! serialises response frames through the connection's [`ConnSink`] (which
//! backpressures against the per-connection outbound buffer — workers never
//! touch sockets).  The SQL dispatch itself is unchanged from the
//! thread-per-session server: `SQL <statement>` is the protocol, the pre-SQL
//! verbs (`QUERY`, `EXACT`, `SAMPLE`, `REFRESH`, `STATS`) are deprecated
//! aliases rewritten into SQL, `STREAM <query>` answers with a multi-frame
//! progressive response.

use crate::protocol::{
    write_coded_error_frame, write_error_frame, write_result_frame, write_stream_done,
    write_stream_frame, ErrorCode, FrameHeader, StreamFrameHeader,
};
use crate::server::{ConnSink, Shared, SinkError, Task};
use std::sync::atomic::Ordering;
use std::time::Instant;
use verdict_core::{
    SampleMeta, SampleType, ShedTier, VerdictAnswer, VerdictResponse, VerdictSession,
};

fn deadline_expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Appends a typed `DEADLINE` error frame and bumps the miss counters.
fn deadline_frame(shared: &Shared, out: &mut String) {
    shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
    shared.count_error();
    write_coded_error_frame(
        out,
        ErrorCode::Deadline,
        "deadline_ms elapsed before the answer completed",
    );
}

/// Executes one admitted task end to end: deadline gate, shed tier,
/// dispatch, response frames.  Admission release and the connection's
/// busy flag are handled by the caller's guard.
pub(crate) fn run_task(shared: &Shared, task: &Task) {
    let conn = &*task.conn;
    let sink = ConnSink {
        shared,
        conn,
        deadline: task.deadline,
    };
    // A statement whose deadline passed while it sat on the run queue is
    // answered without touching the engine: under overload this is the
    // cheap path that keeps the queue draining.
    if deadline_expired(task.deadline) {
        let mut out = String::new();
        deadline_frame(shared, &mut out);
        let _ = sink.send_terminal(&out);
        return;
    }
    let mut session = conn.session.lock().unwrap();
    session.set_shed_tier(task.tier);
    if let Some(rest) = strip_verb(&task.request, "STREAM") {
        handle_stream(rest, shared, task, &mut session, &sink);
    } else {
        let mut out = String::new();
        handle_request(&task.request, shared, task, &mut session, &mut out);
        if deadline_expired(task.deadline) {
            // The engine finished after the deadline: the contract says the
            // client gets a DEADLINE error, not a late answer.
            out.clear();
            deadline_frame(shared, &mut out);
        }
        let _ = sink.send_terminal(&out);
    }
    session.set_shed_tier(ShedTier::None);
}

/// Dispatches one request line, appending the full response frame to `out`.
///
/// `SQL <statement>` is the protocol; everything else is a deprecated alias
/// rewritten into SQL and pushed through the same per-connection session.
/// (`PING`/`QUIT`/`SHUTDOWN` never reach the workers — the I/O shards
/// answer them inline.)
fn handle_request(
    request: &str,
    shared: &Shared,
    task: &Task,
    session: &mut VerdictSession,
    out: &mut String,
) {
    let (verb, rest) = match request.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "SQL" => dispatch_sql(rest, shared, task, session, out),
        // ---- deprecated aliases, kept for old clients -------------------
        "QUERY" => dispatch_sql(rest, shared, task, session, out),
        "EXACT" => dispatch_sql(&format!("BYPASS {rest}"), shared, task, session, out),
        "SAMPLE" => match legacy_sample_to_sql(rest) {
            Ok(sql) => dispatch_sql(&sql, shared, task, session, out),
            Err(msg) => {
                shared.count_error();
                write_error_frame(out, msg);
            }
        },
        "REFRESH" => {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(base), Some(batch), None) => {
                    let sql = format!("REFRESH SCRAMBLES {base} FROM {batch}");
                    dispatch_sql(&sql, shared, task, session, out);
                }
                _ => {
                    shared.count_error();
                    write_error_frame(out, "usage: REFRESH <base_table> <batch_table>");
                }
            }
        }
        "STATS" => dispatch_sql("SHOW STATS", shared, task, session, out),
        // A bare STREAM with no query (the with-query form streams frames).
        "STREAM" => {
            shared.count_error();
            write_error_frame(out, "usage: STREAM <query>");
        }
        other => {
            shared.count_error();
            write_error_frame(out, &format!("unknown command {other}"));
        }
    }
}

/// Case-insensitively strips a leading verb followed by whitespace,
/// returning the trimmed remainder.
fn strip_verb<'a>(request: &'a str, verb: &str) -> Option<&'a str> {
    let (head, rest) = request.split_once(char::is_whitespace)?;
    head.eq_ignore_ascii_case(verb).then(|| rest.trim())
}

/// `STREAM <query>` — the multi-frame response: one `FRAME …` result frame
/// per progressive refinement, closed by a `DONE frames=<n>` mini-frame.
/// Each frame goes through the backpressured sink as soon as the execution
/// produces it, so clients see the estimate tighten in real time while a
/// slow reader is bounded by its own connection's buffer.  Errors before
/// the first frame produce a regular `ERR` frame; an error (or a missed
/// deadline) mid-stream ends the response with an `ERR` frame in place of
/// further `FRAME`s.
fn handle_stream(
    sql: &str,
    shared: &Shared,
    task: &Task,
    session: &mut VerdictSession,
    sink: &ConnSink<'_>,
) {
    shared.stats.queries_served.fetch_add(1, Ordering::Relaxed);
    let stream = match session.stream(sql) {
        Ok(stream) => stream,
        Err(e) => {
            shared.count_error();
            let mut out = String::new();
            write_error_frame(&mut out, &e.to_string());
            let _ = sink.send_terminal(&out);
            return;
        }
    };
    let mut frames = 0usize;
    for frame in stream {
        if deadline_expired(task.deadline) {
            let mut out = String::new();
            deadline_frame(shared, &mut out);
            let _ = sink.send_terminal(&out);
            return;
        }
        match frame {
            Ok(frame) => {
                frames += 1;
                let mut out = String::new();
                write_answer_stream_frame(&frame, task.tier, &mut out);
                match sink.send(&out) {
                    Ok(()) => {}
                    Err(SinkError::Gone) => return,
                    Err(SinkError::Deadline) => {
                        let mut out = String::new();
                        deadline_frame(shared, &mut out);
                        let _ = sink.send_terminal(&out);
                        return;
                    }
                }
            }
            Err(e) => {
                shared.count_error();
                let mut out = String::new();
                write_error_frame(&mut out, &e.to_string());
                let _ = sink.send_terminal(&out);
                return;
            }
        }
    }
    let mut out = String::new();
    write_stream_done(&mut out, frames);
    let _ = sink.send_terminal(&out);
}

/// Annotations shared by degraded answers: the `shed=<n>` header field plus
/// a human-readable `S degraded <tier>` extra.
fn degraded_extra(tier: ShedTier, extras: &mut Vec<(String, String)>) {
    if tier != ShedTier::None {
        extras.push(("degraded".to_string(), tier.label().to_string()));
    }
}

fn write_answer_stream_frame(
    frame: &verdict_core::ProgressFrame,
    tier: ShedTier,
    out: &mut String,
) {
    let answer = &frame.answer;
    let header = StreamFrameHeader {
        base: FrameHeader {
            rows: answer.table.num_rows(),
            cols: answer.table.schema.fields.len(),
            exact: answer.exact,
            cached: answer.cached,
            elapsed_us: answer.elapsed.as_micros() as u64,
            rows_scanned: answer.rows_scanned,
            degraded: tier.level(),
        },
        frame: frame.index,
        rows_seen: frame.rows_seen,
        total_rows: frame.total_rows,
        fraction: frame.fraction,
        last: frame.last,
        early_stopped: frame.early_stopped,
    };
    let errors: Vec<(String, f64, f64)> = answer
        .errors
        .iter()
        .map(|e| {
            (
                e.column.clone(),
                e.mean_relative_error,
                e.max_relative_error,
            )
        })
        .collect();
    let mut extras: Vec<(String, String)> = answer
        .used_samples
        .iter()
        .map(|s| ("used_sample".to_string(), s.clone()))
        .collect();
    degraded_extra(tier, &mut extras);
    write_stream_frame(out, &header, Some(&answer.table), &errors, &extras);
}

/// `SAMPLE <table> <uniform|hashed|stratified> [col,col,…]` → `CREATE
/// SCRAMBLE` text with the same derived scramble name the old handler used.
fn legacy_sample_to_sql(rest: &str) -> Result<String, &'static str> {
    let mut parts = rest.split_whitespace();
    let (table, kind) = match (parts.next(), parts.next()) {
        (Some(t), Some(k)) => (t, k.to_ascii_lowercase()),
        _ => return Err("usage: SAMPLE <table> <type> [columns]"),
    };
    let columns: Vec<String> = parts
        .next()
        .map(|c| c.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_default();
    if parts.next().is_some() {
        // A space-separated column list would silently build a sample over
        // the wrong column set — reject instead of truncating.
        return Err(
            "unexpected trailing arguments; columns must be comma-separated without spaces",
        );
    }
    let sample_type = match kind.as_str() {
        "uniform" => SampleType::Uniform,
        "hashed" if !columns.is_empty() => SampleType::Hashed {
            columns: columns.clone(),
        },
        "stratified" if !columns.is_empty() => SampleType::Stratified {
            columns: columns.clone(),
        },
        _ => return Err("sample type must be uniform, or hashed/stratified with columns"),
    };
    let name = SampleMeta::table_name_for(table, &sample_type);
    let mut sql = format!("CREATE SCRAMBLE {name} FROM {table} METHOD {kind}");
    if !columns.is_empty() {
        sql.push_str(&format!(" ON {}", columns.join(", ")));
    }
    Ok(sql)
}

/// Runs one SQL statement through the connection's session and serialises
/// the unified [`VerdictResponse`] into a protocol frame.
fn dispatch_sql(
    sql: &str,
    shared: &Shared,
    task: &Task,
    session: &mut VerdictSession,
    out: &mut String,
) {
    shared.stats.queries_served.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    match session.execute(sql) {
        Ok(VerdictResponse::Answer(answer)) => write_answer_frame(&answer, task.tier, out),
        Ok(response) => write_response_frame(&response, start, shared, out),
        Err(e) => {
            shared.count_error();
            write_error_frame(out, &e.to_string());
        }
    }
}

fn write_answer_frame(answer: &VerdictAnswer, tier: ShedTier, out: &mut String) {
    let header = FrameHeader {
        rows: answer.table.num_rows(),
        cols: answer.table.schema.fields.len(),
        exact: answer.exact,
        cached: answer.cached,
        elapsed_us: answer.elapsed.as_micros() as u64,
        rows_scanned: answer.rows_scanned,
        degraded: tier.level(),
    };
    let errors: Vec<(String, f64, f64)> = answer
        .errors
        .iter()
        .map(|e| {
            (
                e.column.clone(),
                e.mean_relative_error,
                e.max_relative_error,
            )
        })
        .collect();
    let mut extras: Vec<(String, String)> = answer
        .used_samples
        .iter()
        .map(|s| ("used_sample".to_string(), s.clone()))
        .collect();
    degraded_extra(tier, &mut extras);
    write_result_frame(out, &header, Some(&answer.table), &errors, &extras);
}

/// The serving-layer `(stat, value)` rows appended to `SHOW STATS` and
/// exported by `SHOW METRICS` — transport- and admission-level counters the
/// core session cannot see.  Alphabetically ordered, matching the core's
/// within-section ordering contract.
fn serving_stats(shared: &Shared) -> Vec<(&'static str, u64)> {
    let stats = &shared.stats;
    let adm = shared.admission.stats();
    vec![
        (
            "deadline_misses",
            stats.deadline_misses.load(Ordering::Relaxed),
        ),
        ("draining", shared.draining.load(Ordering::SeqCst) as u64),
        ("errors", stats.errors.load(Ordering::Relaxed)),
        ("exec_workers", shared.cfg.workers as u64),
        ("io_shards", shared.cfg.io_shards as u64),
        ("queries_admitted", adm.admitted),
        ("queries_refused", adm.refused),
        (
            "queries_served",
            stats.queries_served.load(Ordering::Relaxed),
        ),
        ("queries_shed", adm.shed),
        ("queue_capacity", shared.cfg.queue_capacity as u64),
        ("queue_depth", shared.admission.depth() as u64),
        ("queue_peak_depth", adm.peak_depth),
        (
            "sessions_active",
            stats.sessions_active.load(Ordering::Relaxed),
        ),
        (
            "sessions_opened",
            stats.sessions_opened.load(Ordering::Relaxed),
        ),
    ]
}

/// Rebuilds the core's sectioned `SHOW STATS` table with the `serving`
/// section appended (section rank: cache, streams, backend, store, serving).
fn append_serving_section(t: &verdict_engine::Table, shared: &Shared) -> verdict_engine::Table {
    let mut section: Vec<String> = Vec::with_capacity(t.num_rows() + 14);
    let mut stat: Vec<String> = Vec::with_capacity(section.capacity());
    let mut value: Vec<i64> = Vec::with_capacity(section.capacity());
    for row in 0..t.num_rows() {
        section.push(t.value(row, 0).to_string());
        stat.push(t.value(row, 1).to_string());
        value.push(t.value(row, 2).as_i64().unwrap_or(0));
    }
    for (k, v) in serving_stats(shared) {
        section.push("serving".to_string());
        stat.push(k.to_string());
        value.push(v as i64);
    }
    verdict_engine::TableBuilder::new()
        .str_column("section", section)
        .str_column("stat", stat)
        .int_column("value", value)
        .build()
        .expect("stats table construction cannot fail")
}

/// Serialises the non-answer [`VerdictResponse`] variants.  Tabular
/// responses (`SHOW SCRAMBLES` / `SHOW STATS` / `EXPLAIN` / `SHOW PROFILE`)
/// ship the table itself; `SHOW STATS` appends the `serving` section and
/// mirrors its (stat, value) rows as `S key value` lines (the pre-SQL
/// `STATS` format); `SHOW METRICS` appends the serving-layer gauges and
/// counters to the core's exposition and ships it as a one-column table of
/// text lines.
fn write_response_frame(
    response: &VerdictResponse,
    start: Instant,
    shared: &Shared,
    out: &mut String,
) {
    let mut header = FrameHeader {
        elapsed_us: start.elapsed().as_micros() as u64,
        ..FrameHeader::default()
    };
    let mut extras: Vec<(String, String)> = vec![("response".to_string(), response.kind().into())];
    let mut table = None;
    match response {
        VerdictResponse::Answer(_) => unreachable!("answers use write_answer_frame"),
        VerdictResponse::ScramblesCreated(metas) => {
            extras.push(("scrambles_created".to_string(), metas.len().to_string()));
            if let [meta] = metas.as_slice() {
                // Legacy keys old SAMPLE clients read.
                extras.push(("sample_table".to_string(), meta.sample_table.clone()));
                extras.push(("sample_rows".to_string(), meta.sample_rows.to_string()));
                extras.push(("base_rows".to_string(), meta.base_rows.to_string()));
            }
            for meta in metas {
                extras.push(("scramble".to_string(), meta.sample_table.clone()));
            }
        }
        VerdictResponse::ScramblesDropped(n) => {
            extras.push(("scrambles_dropped".to_string(), n.to_string()));
        }
        VerdictResponse::ScramblesRefreshed(n) => {
            extras.push(("refreshed_samples".to_string(), n.to_string()));
        }
        VerdictResponse::Scrambles(t)
        | VerdictResponse::Explain(t)
        | VerdictResponse::Profile(t) => {
            header.rows = t.num_rows();
            header.cols = t.schema.fields.len();
            table = Some(t.clone());
        }
        VerdictResponse::Stats(t) => {
            let full = append_serving_section(t, shared);
            header.rows = full.num_rows();
            header.cols = full.schema.fields.len();
            for row in 0..full.num_rows() {
                extras.push((
                    full.value(row, 1).to_string(),
                    full.value(row, 2).to_string(),
                ));
            }
            table = Some(full);
        }
        VerdictResponse::Metrics(text) => {
            // The core's exposition plus the serving layer's own series:
            // queue/session gauges and admission counters per scrape.
            let mut full = text.clone();
            let stats = &shared.stats;
            let adm = shared.admission.stats();
            use verdict_core::obs::{append_counter, append_gauge};
            append_counter(
                &mut full,
                "verdict_sessions_opened_total",
                stats.sessions_opened.load(Ordering::Relaxed),
            );
            append_counter(
                &mut full,
                "verdict_queries_served_total",
                stats.queries_served.load(Ordering::Relaxed),
            );
            append_counter(
                &mut full,
                "verdict_errors_total",
                stats.errors.load(Ordering::Relaxed),
            );
            append_counter(
                &mut full,
                "verdict_deadline_misses_total",
                stats.deadline_misses.load(Ordering::Relaxed),
            );
            append_counter(&mut full, "verdict_queries_admitted_total", adm.admitted);
            append_counter(&mut full, "verdict_queries_shed_total", adm.shed);
            append_counter(&mut full, "verdict_queries_refused_total", adm.refused);
            append_gauge(
                &mut full,
                "verdict_sessions_active",
                stats.sessions_active.load(Ordering::Relaxed),
            );
            append_gauge(
                &mut full,
                "verdict_queue_depth",
                shared.admission.depth() as u64,
            );
            append_gauge(
                &mut full,
                "verdict_queue_capacity",
                shared.cfg.queue_capacity as u64,
            );
            append_gauge(&mut full, "verdict_queue_peak_depth", adm.peak_depth);
            append_gauge(
                &mut full,
                "verdict_draining",
                shared.draining.load(Ordering::SeqCst) as u64,
            );
            let lines: Vec<String> = full.lines().map(|l| l.to_string()).collect();
            let t = verdict_engine::TableBuilder::new()
                .str_column("metrics", lines)
                .build()
                .expect("metrics table construction cannot fail");
            header.rows = t.num_rows();
            header.cols = 1;
            table = Some(t);
        }
        VerdictResponse::OptionSet { name, value } => {
            extras.push(("option".to_string(), name.clone()));
            extras.push(("value".to_string(), value.clone()));
        }
    }
    write_result_frame(out, &header, table.as_ref(), &[], &extras);
}
