//! # verdict-server
//!
//! Concurrent query serving for VerdictDB-rs.
//!
//! The paper describes VerdictDB as a driver-level middleware that many
//! analysts query at once; this crate adds the serving surface the
//! reproduction was missing:
//!
//! * a **line-based text protocol** over plain TCP ([`protocol`]) with one
//!   work verb — `SQL <statement>` — simple enough to drive with `nc`,
//!   precise enough to round-trip every engine value bit-exactly;
//! * a **multiplexed event-loop server** ([`server`]): a handful of I/O
//!   shard threads poll thousands of nonblocking sockets, parsed statements
//!   go through admission control (accuracy shedding first, typed `BUSY`
//!   refusal only at the queue watermark, per-query `deadline_ms`) onto a
//!   bounded run queue drained by executor workers.  Each connection owns
//!   a [`verdict_core::VerdictSession`] (so the full SQL surface —
//!   scramble DDL, `BYPASS`, session-scoped `SET` — works over the wire),
//!   all sharing one [`verdict_core::VerdictContext`] (engine catalog,
//!   sample metadata, and the LRU approximate-answer cache) behind an
//!   `Arc`;
//! * a **blocking client** ([`client`]) used by the CLI, the load
//!   generator, the end-to-end tests, and the benchmark harness — with
//!   typed `Busy`/`Deadline` refusals, a `Disconnected` error for dead
//!   servers, and an optional read timeout;
//! * a **remote backend** ([`backend::RemoteBackend`]): the same wire
//!   protocol packaged as a [`verdict_engine::Backend`], so a *local*
//!   `VerdictContext` can plan queries and have a *remote* `verdict-server`
//!   execute the rendered SQL — a two-tier middleware-over-middleware
//!   deployment.
//!
//! Three binaries ship with the crate: `verdict-server` (load a dataset,
//! build samples, serve), `verdict-cli` (interactive shell / one-shot
//! queries), and `verdict-loadgen` (N-session throughput measurement).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use verdict_core::{VerdictConfig, VerdictContext};
//! use verdict_engine::{Backend, Engine, TableBuilder};
//! use verdict_server::{VerdictClient, VerdictServer};
//!
//! let engine = Engine::with_seed(1);
//! let table = TableBuilder::new()
//!     .int_column("id", (0..100).collect())
//!     .float_column("price", (0..100).map(|i| i as f64).collect())
//!     .build()
//!     .unwrap();
//! engine.register_table("sales", table);
//! let conn: Arc<dyn Backend> = Arc::new(engine);
//! let mut config = VerdictConfig::for_testing();
//! config.answer_cache_capacity = 64;
//! let ctx = Arc::new(VerdictContext::new(conn, config));
//!
//! let handle = VerdictServer::bind("127.0.0.1:0", ctx).unwrap().spawn().unwrap();
//! let mut client = VerdictClient::connect(handle.addr()).unwrap();
//! let answer = client.query("SELECT count(*) AS cnt FROM sales").unwrap();
//! assert_eq!(answer.value(0, 0).as_i64(), Some(100));
//! client.quit().unwrap();
//! handle.stop();
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod client;
mod dispatch;
pub mod protocol;
pub mod server;

pub use backend::RemoteBackend;
pub use client::{ClientError, ClientResult, RemoteAnswer, StreamFrame, VerdictClient};
pub use protocol::{ErrorCode, FrameHeader, StreamFrameHeader};
pub use server::{ServerHandle, ServerStats, ServingConfig, VerdictServer};
