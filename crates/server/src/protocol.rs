//! The line-based text wire protocol shared by the server and the client.
//!
//! Every request is one UTF-8 line (`\n`-terminated); every response is a
//! *frame*: a status line, zero or more tagged body lines, and a lone `.`
//! terminator line.  The format is deliberately trivial — `nc` is a usable
//! client — while still round-tripping every engine value bit-exactly (see
//! [`escape_field`] / [`format_value`]).
//!
//! ```text
//! request:  QUERY SELECT city, avg(price) FROM orders GROUP BY city
//! response: OK rows=10 cols=2 exact=0 cached=1 elapsed_us=42 rows_scanned=16234
//!           C city<TAB>ap
//!           T VARCHAR<TAB>DOUBLE
//!           R city_0<TAB>49.7212
//!           …
//!           E ap<TAB>0.0132<TAB>0.0489
//!           .
//! ```
//!
//! See `docs/serving.md` for the full command reference and semantics.

use std::fmt::Write as _;
use verdict_engine::{DataType, Table, Value};

/// Terminator line ending every response frame.
pub const FRAME_END: &str = ".";

/// Machine-readable code carried by a typed `ERR` frame (`ERR <CODE>
/// <message>`).  Untyped errors (plain `ERR <message>`) remain legal; old
/// clients simply see the code as the first word of the message, so the
/// extension is backward compatible in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the statement: the run queue is at its
    /// capacity watermark.  Retry later (ideally with backoff).
    Busy,
    /// The statement's `deadline_ms` passed before a complete answer could
    /// be delivered.
    Deadline,
    /// The server is draining: in-flight work finishes, new statements are
    /// refused, the connection closes once its responses are flushed.
    Shutdown,
}

impl ErrorCode {
    /// The wire token for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Busy => "BUSY",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::Shutdown => "SHUTDOWN",
        }
    }

    /// Parses a wire token (the first word of an `ERR` payload).
    pub fn parse(token: &str) -> Option<ErrorCode> {
        match token {
            "BUSY" => Some(ErrorCode::Busy),
            "DEADLINE" => Some(ErrorCode::Deadline),
            "SHUTDOWN" => Some(ErrorCode::Shutdown),
            _ => None,
        }
    }
}

/// Splits an `ERR` payload into its typed code (if any) and the
/// human-readable remainder.
pub fn split_error_code(payload: &str) -> (Option<ErrorCode>, &str) {
    match payload.split_once(' ') {
        Some((head, rest)) => match ErrorCode::parse(head) {
            Some(code) => (Some(code), rest),
            None => (None, payload),
        },
        None => (ErrorCode::parse(payload), ""),
    }
}

/// Marker for SQL NULL in a `R` (row) body line.
pub const NULL_FIELD: &str = "\\N";

/// Escapes one tab-separated field: `\` → `\\`, TAB → `\t`, LF → `\n`,
/// CR → `\r`.  The escaping is total (any byte sequence survives) so string
/// values containing separators or newlines round-trip unchanged.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`].
pub fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                // Unknown escape: keep it verbatim rather than failing the frame.
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Renders a value for a `R` body line.  Floats use Rust's shortest
/// round-trip rendering, so the client re-parses the *bit-identical* f64;
/// NULL becomes [`NULL_FIELD`].
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Null => NULL_FIELD.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.is_nan() {
                "NaN".to_string()
            } else if *f == f64::INFINITY {
                "inf".to_string()
            } else if *f == f64::NEG_INFINITY {
                "-inf".to_string()
            } else {
                format!("{f}")
            }
        }
        Value::Str(s) => escape_field(s),
        Value::Bool(b) => b.to_string(),
    }
}

/// Parses a `R` body field back into a value of the given column type.
pub fn parse_value(field: &str, data_type: DataType) -> Value {
    if field == NULL_FIELD {
        return Value::Null;
    }
    match data_type {
        DataType::Int => field.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or(Value::Null),
        DataType::Bool => field
            .parse::<bool>()
            .map(Value::Bool)
            .unwrap_or(Value::Null),
        DataType::Str => Value::Str(unescape_field(field)),
    }
}

/// Renders a wire type tag for a schema field.
pub fn type_tag(dt: DataType) -> &'static str {
    match dt {
        DataType::Int => "BIGINT",
        DataType::Float => "DOUBLE",
        DataType::Str => "VARCHAR",
        DataType::Bool => "BOOLEAN",
    }
}

/// Parses a wire type tag back into a [`DataType`] (defaults to `Str` for
/// unknown tags, which at worst loses numeric typing, never data).
pub fn parse_type_tag(tag: &str) -> DataType {
    match tag {
        "BIGINT" => DataType::Int,
        "DOUBLE" => DataType::Float,
        "BOOLEAN" => DataType::Bool,
        _ => DataType::Str,
    }
}

/// Summary values carried on the `OK` status line of a result frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameHeader {
    /// Number of `R` rows that follow.
    pub rows: usize,
    /// Number of columns per row.
    pub cols: usize,
    /// 1 when the answer was computed exactly on the base tables.
    pub exact: bool,
    /// 1 when the answer was served from the approximate-answer cache.
    pub cached: bool,
    /// Server-side wall-clock for the request, in microseconds.
    pub elapsed_us: u64,
    /// Base/sample rows scanned by the underlying database.
    pub rows_scanned: u64,
    /// Load-shedding level the statement ran under (`0` = unshedded; see
    /// [`verdict_core::shed::ShedTier::level`]).  Non-zero values mark a
    /// `DEGRADED` answer: admission control relaxed the accuracy contract
    /// to keep the server responsive.  Serialised as `shed=<n>` only when
    /// non-zero, so unshedded frames are byte-identical to the old format.
    pub degraded: u8,
}

impl FrameHeader {
    fn fields(&self) -> String {
        let mut fields = format!(
            "rows={} cols={} exact={} cached={} elapsed_us={} rows_scanned={}",
            self.rows,
            self.cols,
            self.exact as u8,
            self.cached as u8,
            self.elapsed_us,
            self.rows_scanned
        );
        if self.degraded > 0 {
            let _ = write!(fields, " shed={}", self.degraded);
        }
        fields
    }

    /// Renders the `OK …` status line.
    pub fn status_line(&self) -> String {
        format!("OK {}", self.fields())
    }

    /// Parses the `key=value` tail shared by `OK` and `FRAME` status lines
    /// (missing keys default to zero, unknown keys are skipped).
    fn parse_tail(rest: &str) -> Option<FrameHeader> {
        let mut header = FrameHeader::default();
        for kv in rest.split_whitespace() {
            let (key, value) = kv.split_once('=')?;
            match key {
                "rows" => header.rows = value.parse().ok()?,
                "cols" => header.cols = value.parse().ok()?,
                "exact" => header.exact = value == "1",
                "cached" => header.cached = value == "1",
                "elapsed_us" => header.elapsed_us = value.parse().ok()?,
                "rows_scanned" => header.rows_scanned = value.parse().ok()?,
                "shed" => header.degraded = value.parse().ok()?,
                _ => {}
            }
        }
        Some(header)
    }

    /// Parses an `OK …` status line (missing keys default to zero).
    pub fn parse(line: &str) -> Option<FrameHeader> {
        Self::parse_tail(line.strip_prefix("OK")?)
    }
}

/// Status-line metadata of one progressive frame (`FRAME …`), carried in
/// addition to the regular [`FrameHeader`] fields.
///
/// A `STREAM <query>` request is answered by a *sequence* of result frames,
/// each introduced by a `FRAME …` status line (same body format as an `OK`
/// frame: `C`/`T`/`R`/`E`/`S` lines and a `.` terminator), followed by one
/// closing mini-frame whose status line is `DONE frames=<n>`:
///
/// ```text
/// request:  STREAM SELECT city, avg(price) AS ap FROM orders GROUP BY city
/// response: FRAME rows=10 cols=2 … frame=1 rows_seen=65536 total_rows=983040 fraction=0.066667 last=0
///           C city<TAB>ap
///           …
///           .
///           FRAME … frame=2 … last=1
///           …
///           .
///           DONE frames=2
///           .
/// ```
///
/// Only the `STREAM` verb elicits multi-frame responses; a `SQL STREAM
/// SELECT …` request keeps the classic single `OK` frame (carrying the
/// stream's final answer), so pre-streaming clients never desynchronise.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamFrameHeader {
    /// The regular result-frame header.
    pub base: FrameHeader,
    /// 1-based frame number within the stream.
    pub frame: usize,
    /// Scramble rows consumed when the frame was assembled.
    pub rows_seen: u64,
    /// Scramble rows a run to completion would consume.
    pub total_rows: u64,
    /// `rows_seen / total_rows` (1.0 for completed / single-frame streams).
    pub fraction: f64,
    /// True on the stream's final frame.
    pub last: bool,
    /// True when the stream stopped early because the session's
    /// `target_error` was met before the scramble was exhausted.
    pub early_stopped: bool,
}

impl StreamFrameHeader {
    /// Renders the `FRAME …` status line.
    pub fn status_line(&self) -> String {
        format!(
            "FRAME {} frame={} rows_seen={} total_rows={} fraction={:.6} last={} early_stop={}",
            self.base.fields(),
            self.frame,
            self.rows_seen,
            self.total_rows,
            self.fraction,
            self.last as u8,
            self.early_stopped as u8,
        )
    }

    /// Parses a `FRAME …` status line.
    pub fn parse(line: &str) -> Option<StreamFrameHeader> {
        let rest = line.strip_prefix("FRAME")?;
        let mut header = StreamFrameHeader {
            base: FrameHeader::parse_tail(rest)?,
            ..StreamFrameHeader::default()
        };
        for kv in rest.split_whitespace() {
            let (key, value) = kv.split_once('=')?;
            match key {
                "frame" => header.frame = value.parse().ok()?,
                "rows_seen" => header.rows_seen = value.parse().ok()?,
                "total_rows" => header.total_rows = value.parse().ok()?,
                "fraction" => header.fraction = value.parse().ok()?,
                "last" => header.last = value == "1",
                "early_stop" => header.early_stopped = value == "1",
                _ => {}
            }
        }
        Some(header)
    }
}

/// Renders the `DONE frames=<n>` mini-frame closing a stream response.
pub fn write_stream_done(out: &mut String, frames: usize) {
    let _ = writeln!(out, "DONE frames={frames}");
    out.push_str(FRAME_END);
    out.push('\n');
}

/// Parses a `DONE frames=<n>` status line.
pub fn parse_stream_done(line: &str) -> Option<usize> {
    let rest = line.strip_prefix("DONE")?;
    for kv in rest.split_whitespace() {
        if let Some(("frames", value)) = kv.split_once('=') {
            return value.parse().ok();
        }
    }
    Some(0)
}

/// Serialises a full result frame (status, `C`/`T`/`R`/`E`/`S` body lines,
/// terminator) into `out`.  `extras` carries `S key value` informational
/// lines (cache stats, sample names, …).
pub fn write_result_frame(
    out: &mut String,
    header: &FrameHeader,
    table: Option<&Table>,
    errors: &[(String, f64, f64)],
    extras: &[(String, String)],
) {
    write_frame_with_status(out, &header.status_line(), table, errors, extras);
}

/// Serialises one progressive frame of a stream response: a `FRAME …`
/// status line with the same body format as a regular result frame.
pub fn write_stream_frame(
    out: &mut String,
    header: &StreamFrameHeader,
    table: Option<&Table>,
    errors: &[(String, f64, f64)],
    extras: &[(String, String)],
) {
    write_frame_with_status(out, &header.status_line(), table, errors, extras);
}

fn write_frame_with_status(
    out: &mut String,
    status: &str,
    table: Option<&Table>,
    errors: &[(String, f64, f64)],
    extras: &[(String, String)],
) {
    out.push_str(status);
    out.push('\n');
    if let Some(table) = table {
        if !table.schema.fields.is_empty() {
            let names: Vec<String> = table
                .schema
                .fields
                .iter()
                .map(|f| escape_field(&f.name))
                .collect();
            let _ = writeln!(out, "C {}", names.join("\t"));
            let tags: Vec<&str> = table
                .schema
                .fields
                .iter()
                .map(|f| type_tag(f.data_type))
                .collect();
            let _ = writeln!(out, "T {}", tags.join("\t"));
            for row in 0..table.num_rows() {
                let fields: Vec<String> = (0..table.schema.fields.len())
                    .map(|col| format_value(&table.value_at(row, col)))
                    .collect();
                let _ = writeln!(out, "R {}", fields.join("\t"));
            }
        }
    }
    for (column, mean_rel, max_rel) in errors {
        let _ = writeln!(out, "E {}\t{}\t{}", escape_field(column), mean_rel, max_rel);
    }
    for (key, value) in extras {
        let _ = writeln!(out, "S {} {}", escape_field(key), escape_field(value));
    }
    out.push_str(FRAME_END);
    out.push('\n');
}

/// Serialises an error frame.
pub fn write_error_frame(out: &mut String, message: &str) {
    let _ = writeln!(out, "ERR {}", escape_field(message));
    out.push_str(FRAME_END);
    out.push('\n');
}

/// Serialises a typed error frame (`ERR <CODE> <message>`).
pub fn write_coded_error_frame(out: &mut String, code: ErrorCode, message: &str) {
    write_error_frame(out, &format!("{} {message}", code.as_str()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_awkward_strings() {
        for s in [
            "plain",
            "tab\there",
            "line\nbreak",
            "back\\slash",
            "\\N",
            "",
        ] {
            assert_eq!(unescape_field(&escape_field(s)), s);
        }
    }

    #[test]
    fn float_values_roundtrip_bit_exactly() {
        for f in [
            0.1,
            -0.0,
            std::f64::consts::PI,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let wire = format_value(&Value::Float(f));
            match parse_value(&wire, DataType::Float) {
                Value::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "for {f}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
        // NaN round-trips as NaN (bit pattern of parsed NaN is canonical).
        assert!(matches!(
            parse_value(&format_value(&Value::Float(f64::NAN)), DataType::Float),
            Value::Float(f) if f.is_nan()
        ));
    }

    #[test]
    fn null_marker_roundtrips() {
        assert_eq!(format_value(&Value::Null), "\\N");
        assert_eq!(parse_value("\\N", DataType::Int), Value::Null);
        // A *string* that happens to be "\N" is escaped, so it stays a string.
        let tricky = Value::Str("\\N".into());
        let wire = format_value(&tricky);
        assert_ne!(wire, "\\N");
        assert_eq!(parse_value(&wire, DataType::Str), tricky);
    }

    #[test]
    fn stream_header_and_done_roundtrip() {
        let h = StreamFrameHeader {
            base: FrameHeader {
                rows: 3,
                cols: 2,
                exact: false,
                cached: false,
                elapsed_us: 99,
                rows_scanned: 65_536,
                degraded: 0,
            },
            frame: 4,
            rows_seen: 65_536,
            total_rows: 983_040,
            fraction: 65_536.0 / 983_040.0,
            last: false,
            early_stopped: false,
        };
        let parsed = StreamFrameHeader::parse(&h.status_line()).unwrap();
        assert_eq!(parsed.frame, 4);
        assert_eq!(parsed.rows_seen, 65_536);
        assert_eq!(parsed.total_rows, 983_040);
        assert!(!parsed.last && !parsed.early_stopped);
        assert!((parsed.fraction - h.fraction).abs() < 1e-6);
        assert_eq!(parsed.base.rows, 3);
        assert!(StreamFrameHeader::parse("OK rows=1").is_none());

        let mut out = String::new();
        write_stream_done(&mut out, 7);
        let mut lines = out.lines();
        assert_eq!(parse_stream_done(lines.next().unwrap()), Some(7));
        assert_eq!(lines.next().unwrap(), FRAME_END);
        assert_eq!(parse_stream_done("DONE"), Some(0));
        assert_eq!(parse_stream_done("OK rows=1"), None);
    }

    #[test]
    fn header_roundtrips() {
        let h = FrameHeader {
            rows: 12,
            cols: 3,
            exact: false,
            cached: true,
            elapsed_us: 512,
            rows_scanned: 10_000,
            degraded: 0,
        };
        assert_eq!(FrameHeader::parse(&h.status_line()), Some(h));
        assert_eq!(FrameHeader::parse("garbage"), None);
    }

    #[test]
    fn degraded_header_roundtrips_and_stays_out_of_clean_frames() {
        let clean = FrameHeader::default();
        assert!(!clean.status_line().contains("shed="));

        let shed = FrameHeader {
            degraded: 2,
            ..FrameHeader::default()
        };
        let line = shed.status_line();
        assert!(line.contains("shed=2"), "{line}");
        assert_eq!(FrameHeader::parse(&line), Some(shed));
    }

    #[test]
    fn error_codes_roundtrip() {
        let mut out = String::new();
        write_coded_error_frame(&mut out, ErrorCode::Busy, "queue full (64)");
        let payload = unescape_field(out.lines().next().unwrap().strip_prefix("ERR ").unwrap());
        let (code, rest) = split_error_code(&payload);
        assert_eq!(code, Some(ErrorCode::Busy));
        assert_eq!(rest, "queue full (64)");

        // Untyped errors keep their full message.
        let (code, rest) = split_error_code("no such table t");
        assert_eq!(code, None);
        assert_eq!(rest, "no such table t");
        assert_eq!(
            split_error_code("DEADLINE"),
            (Some(ErrorCode::Deadline), "")
        );
    }
}
