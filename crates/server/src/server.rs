//! The multiplexed serving layer: a sharded nonblocking event loop with
//! admission control and accuracy shedding.
//!
//! PR 3's thread-per-session server was fine for tens of dashboards and
//! fatal for thousands: every idle connection pinned a stack, every stalled
//! client pinned a thread.  This module replaces it with the classic
//! scale-out shape, built only on `std` plus the in-tree
//! [`verdict_poll`] shim:
//!
//! * **N I/O shards** — each shard thread owns a set of nonblocking sockets
//!   and multiplexes them with a level-triggered `poll(2)` readiness loop.
//!   Per-connection read and write buffers are bounded; a stalled or
//!   malicious client can wedge only its own connection, never the loop.
//! * **A bounded run queue** — parsed statements are handed to a small pool
//!   of executor workers (which drive the engine's existing morsel pool);
//!   I/O threads never execute queries.
//! * **Admission control** — every statement passes the
//!   [`verdict_core::shed`] gate: as queue depth crosses watermarks the
//!   server first *sheds accuracy* (raises the tolerated error, shrinks
//!   the I/O budget — answers carry a `shed=<tier>` / `DEGRADED`
//!   annotation) and only refuses with a typed `BUSY` error once the queue
//!   is full.  Sessions can set per-query deadlines (`SET deadline_ms`);
//!   missed deadlines answer with a typed `DEADLINE` error.
//! * **Graceful drain** — the `SHUTDOWN` verb (or [`ServerHandle::drain`])
//!   stops accepting, refuses new statements with a typed `SHUTDOWN`
//!   error, finishes in-flight work, flushes every pending `STREAM` frame,
//!   then closes.
//!
//! The wire protocol and per-connection session semantics are unchanged
//! from the thread-per-session server: one request line in, one response
//! frame out (a frame sequence for `STREAM`), one
//! [`verdict_core::VerdictSession`] per connection, strict per-connection
//! ordering (a connection's next statement is parsed only after the
//! previous one's response is queued).

use crate::dispatch;
use crate::protocol::{
    write_coded_error_frame, write_error_frame, write_result_frame, ErrorCode, FrameHeader,
};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use verdict_core::{
    Admission, AdmissionController, ShedPolicy, ShedTier, VerdictContext, VerdictSession,
};
use verdict_poll::{poll, poll_handle, wake_pair, PollFd, POLLIN, POLLOUT};

/// Longest accepted request line.  A line-based protocol must bound its
/// buffering: without a cap, one client streaming bytes with no newline
/// would grow server memory without limit.
pub(crate) const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Aggregate serving counters, shared by every session.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions accepted since the server started.
    pub sessions_opened: AtomicU64,
    /// Sessions currently connected.
    pub sessions_active: AtomicU64,
    /// SQL statements dispatched (including errors; `SQL` and every
    /// deprecated alias count, `PING`/`QUIT` do not).
    pub queries_served: AtomicU64,
    /// Requests that produced an `ERR` frame (including typed `BUSY` /
    /// `DEADLINE` / `SHUTDOWN` refusals).
    pub errors: AtomicU64,
    /// Statements answered with a typed `DEADLINE` error because their
    /// `deadline_ms` passed before a complete answer could be delivered.
    pub deadline_misses: AtomicU64,
}

/// Tuning knobs for the event-loop server.  Every knob has a sensible
/// default and an environment override so the stock binary can be shaped
/// without flags; tests use the [`VerdictServer`] builder methods.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Number of I/O shard threads multiplexing connections
    /// (`VERDICT_SERVER_SHARDS`).
    pub io_shards: usize,
    /// Number of executor workers draining the run queue
    /// (`VERDICT_SERVER_WORKERS`).
    pub workers: usize,
    /// Capacity of the bounded run queue — the admission-control watermark
    /// (`VERDICT_QUEUE_CAP`).
    pub queue_capacity: usize,
    /// Per-connection outbound buffer high watermark in bytes: a stream
    /// whose client stops reading is paused (not dropped) at this size.
    pub write_buffer_bytes: usize,
    /// How long a paused stream waits for a stalled client to drain its
    /// outbound buffer before the connection is declared dead.
    pub write_stall_timeout: Duration,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

impl Default for ServingConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServingConfig {
            io_shards: env_usize("VERDICT_SERVER_SHARDS")
                .unwrap_or_else(|| cores.clamp(2, 8))
                .max(1),
            workers: env_usize("VERDICT_SERVER_WORKERS")
                .unwrap_or_else(|| (cores * 2).clamp(4, 16))
                .max(1),
            queue_capacity: env_usize("VERDICT_QUEUE_CAP").unwrap_or(256).max(1),
            write_buffer_bytes: 256 * 1024,
            write_stall_timeout: Duration::from_secs(10),
        }
    }
}

/// Wakes one shard's poll loop from another thread (loopback byte write;
/// saturation means a wake is already pending, so `WouldBlock` is success).
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<TcpStream>,
}

impl Waker {
    fn new(tx: TcpStream) -> Waker {
        let _ = tx.set_nonblocking(true);
        Waker { tx: Arc::new(tx) }
    }

    pub(crate) fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// One shard's mailbox: freshly accepted connections plus the wake channel.
struct ShardChannel {
    inbox: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

/// State shared between the accept loop, the I/O shards, the executor
/// workers, and every [`ConnShared`].
pub(crate) struct Shared {
    pub(crate) ctx: Arc<VerdictContext>,
    pub(crate) stats: ServerStats,
    pub(crate) cfg: ServingConfig,
    pub(crate) admission: AdmissionController,
    pub(crate) queue: Mutex<VecDeque<Task>>,
    pub(crate) queue_cv: Condvar,
    /// Drain requested: stop accepting, refuse new statements, finish
    /// in-flight work, flush, close.
    pub(crate) draining: AtomicBool,
    /// Hard stop: close connections after one flush attempt, skip queued
    /// statements.  Implies `draining`.
    pub(crate) force: AtomicBool,
    /// Set by the supervisor once the shards have exited; lets workers
    /// finish the remaining queue and return.
    workers_done: AtomicBool,
    channels: OnceLock<Vec<ShardChannel>>,
}

impl Shared {
    pub(crate) fn force_stopped(&self) -> bool {
        self.force.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    pub(crate) fn request_drain(&self) {
        self.begin_drain();
    }

    fn force_stop(&self) {
        self.force.store(true, Ordering::SeqCst);
        self.begin_drain();
    }

    fn wake_all(&self) {
        if let Some(channels) = self.channels.get() {
            for ch in channels {
                ch.waker.wake();
            }
        }
        self.queue_cv.notify_all();
    }

    pub(crate) fn count_error(&self) {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-connection state shared between the owning I/O shard and the
/// executor workers: the session, the bounded outbound buffer, and the
/// lifecycle flags.
pub(crate) struct ConnShared {
    pub(crate) session: Mutex<VerdictSession>,
    out: Mutex<VecDeque<u8>>,
    can_write: Condvar,
    pub(crate) dead: AtomicBool,
    /// A statement from this connection is queued or executing; the shard
    /// parses no further requests until the worker clears it.
    busy: AtomicBool,
    close_after_flush: AtomicBool,
    waker: Waker,
}

impl ConnShared {
    fn new(session: VerdictSession, waker: Waker) -> ConnShared {
        ConnShared {
            session: Mutex::new(session),
            out: Mutex::new(VecDeque::new()),
            can_write: Condvar::new(),
            dead: AtomicBool::new(false),
            busy: AtomicBool::new(false),
            close_after_flush: AtomicBool::new(false),
            waker: Waker {
                tx: Arc::clone(&waker.tx),
            },
        }
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Appends response bytes without backpressure (shard-side inline
    /// responses and worker-side terminal frames).
    fn push_unbounded(&self, text: &str) {
        if self.is_dead() {
            return;
        }
        let mut out = self.out.lock().unwrap();
        out.extend(text.as_bytes());
        drop(out);
        self.waker.wake();
    }

    fn outbound_len(&self) -> usize {
        self.out.lock().unwrap().len()
    }
}

/// Why a worker-side send could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SinkError {
    /// The connection died (or the server is force-stopping): stop
    /// producing, no terminal frame is owed.
    Gone,
    /// The statement's deadline passed while the send was backpressured.
    Deadline,
}

/// Worker-side writer for one statement's response bytes: appends to the
/// connection's bounded outbound buffer, blocking (with a stall timeout)
/// while the buffer is over its high watermark.  This is the isolation
/// boundary — a client that stops reading backpressures *its own* stream
/// here, on a worker, while the I/O shards keep multiplexing everyone else.
pub(crate) struct ConnSink<'a> {
    pub(crate) shared: &'a Shared,
    pub(crate) conn: &'a ConnShared,
    pub(crate) deadline: Option<Instant>,
}

impl ConnSink<'_> {
    /// Sends with backpressure.  Use for non-terminal stream frames.
    pub(crate) fn send(&self, text: &str) -> Result<(), SinkError> {
        let high = self.shared.cfg.write_buffer_bytes;
        let stall = self.shared.cfg.write_stall_timeout;
        let mut out = self.conn.out.lock().unwrap();
        let mut last_len = out.len();
        let mut last_progress = Instant::now();
        loop {
            if self.conn.is_dead() || self.shared.force_stopped() {
                return Err(SinkError::Gone);
            }
            if out.is_empty() || out.len() <= high {
                out.extend(text.as_bytes());
                drop(out);
                self.conn.waker.wake();
                return Ok(());
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return Err(SinkError::Deadline);
                }
            }
            if out.len() < last_len {
                last_len = out.len();
                last_progress = Instant::now();
            } else if last_progress.elapsed() >= stall {
                // The client stopped reading and the buffer is pinned at
                // its watermark: declare the connection dead so the shard
                // reaps it, and release this worker.
                drop(out);
                self.conn.dead.store(true, Ordering::SeqCst);
                self.conn.waker.wake();
                return Err(SinkError::Gone);
            }
            let (guard, _) = self
                .conn
                .can_write
                .wait_timeout(out, Duration::from_millis(20))
                .unwrap();
            out = guard;
        }
    }

    /// Sends ignoring the high watermark: terminal frames (the final `OK` /
    /// `ERR` / `DONE`) are always delivered to a live connection so every
    /// admitted statement gets exactly one terminal frame.
    pub(crate) fn send_terminal(&self, text: &str) -> Result<(), SinkError> {
        if self.conn.is_dead() || self.shared.force_stopped() {
            return Err(SinkError::Gone);
        }
        self.conn.push_unbounded(text);
        Ok(())
    }
}

/// One admitted statement on the bounded run queue.
pub(crate) struct Task {
    pub(crate) conn: Arc<ConnShared>,
    pub(crate) request: String,
    pub(crate) tier: ShedTier,
    pub(crate) deadline: Option<Instant>,
}

/// A VerdictDB server bound to a TCP address but not yet accepting.
pub struct VerdictServer {
    listener: TcpListener,
    ctx: Arc<VerdictContext>,
    cfg: ServingConfig,
}

/// Handle to a running server: address, stats access, drain, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl VerdictServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) over a shared
    /// context.  The context's answer cache makes repeated queries cheap;
    /// enable it via [`verdict_core::VerdictConfig::answer_cache_capacity`].
    pub fn bind(addr: &str, ctx: Arc<VerdictContext>) -> std::io::Result<VerdictServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(VerdictServer {
            listener,
            ctx,
            cfg: ServingConfig::default(),
        })
    }

    /// Replaces the serving configuration wholesale.
    pub fn with_config(mut self, cfg: ServingConfig) -> VerdictServer {
        self.cfg = cfg;
        self
    }

    /// Sets the number of I/O shard threads.
    pub fn with_io_shards(mut self, n: usize) -> VerdictServer {
        self.cfg.io_shards = n.max(1);
        self
    }

    /// Sets the number of executor workers.
    pub fn with_workers(mut self, n: usize) -> VerdictServer {
        self.cfg.workers = n.max(1);
        self
    }

    /// Sets the run-queue capacity (the admission-control watermark).
    pub fn with_queue_capacity(mut self, n: usize) -> VerdictServer {
        self.cfg.queue_capacity = n.max(1);
        self
    }

    /// Sets the per-connection outbound high watermark, in bytes.
    pub fn with_write_buffer_bytes(mut self, n: usize) -> VerdictServer {
        self.cfg.write_buffer_bytes = n.max(1024);
        self
    }

    /// Sets how long a backpressured stream waits for a stalled client.
    pub fn with_write_stall_timeout(mut self, d: Duration) -> VerdictServer {
        self.cfg.write_stall_timeout = d;
        self
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn shared(&self) -> Arc<Shared> {
        Arc::new(Shared {
            ctx: Arc::clone(&self.ctx),
            stats: ServerStats::default(),
            admission: AdmissionController::new(ShedPolicy::for_capacity(self.cfg.queue_capacity)),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            force: AtomicBool::new(false),
            workers_done: AtomicBool::new(false),
            channels: OnceLock::new(),
            cfg: self.cfg.clone(),
        })
    }

    /// Starts the server on background threads and returns a handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shared = self.shared();
        let listener = self.listener;
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("verdict-serve".into())
            .spawn(move || run_server(listener, sup_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// Runs the server on the calling thread until a drain is requested —
    /// either a client sends the `SHUTDOWN` verb or the process is killed.
    /// Returns after the graceful drain completes: accepting stopped,
    /// in-flight statements finished, responses flushed, sockets closed.
    pub fn serve_forever(self) -> std::io::Result<()> {
        let shared = self.shared();
        run_server(self.listener, shared);
        Ok(())
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving context.
    pub fn context(&self) -> &Arc<VerdictContext> {
        &self.shared.ctx
    }

    /// The aggregate serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Admission-control counters (admitted / shed / refused / peak depth).
    pub fn admission_stats(&self) -> verdict_core::AdmissionStats {
        self.shared.admission.stats()
    }

    /// Requests a graceful drain and waits up to `timeout` for it to
    /// complete: stop accepting, refuse new statements, finish in-flight
    /// work, flush responses, close connections.  Returns `true` when the
    /// drain finished within the timeout; on `false` the drop that follows
    /// escalates to a hard stop.
    pub fn drain(self, timeout: Duration) -> bool {
        self.shared.begin_drain();
        let deadline = Instant::now() + timeout;
        let graceful = loop {
            let finished = self.supervisor.as_ref().is_none_or(|t| t.is_finished());
            if finished {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        drop(self); // force-stop (a no-op when already drained) and join
        graceful
    }

    /// Stops the server: drains briefly, then hard-stops.  Dropping the
    /// handle has the same effect; this method just makes the intent
    /// explicit.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.force_stop();
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
    }
}

/// The supervisor: spawns shards and workers, runs the accept loop, then
/// coordinates the drain (shards first, then the workers flush the queue).
fn run_server(listener: TcpListener, shared: Arc<Shared>) {
    let mut channels = Vec::with_capacity(shared.cfg.io_shards);
    let mut shard_threads = Vec::with_capacity(shared.cfg.io_shards);
    let mut plan = Vec::with_capacity(shared.cfg.io_shards);
    for idx in 0..shared.cfg.io_shards {
        let (wake_rx, wake_tx) = match wake_pair() {
            Ok(pair) => pair,
            Err(_) => return, // loopback unavailable: cannot serve
        };
        channels.push(ShardChannel {
            inbox: Mutex::new(Vec::new()),
            waker: Waker::new(wake_tx),
        });
        plan.push((idx, wake_rx));
    }
    if shared.channels.set(channels).is_err() {
        return; // run_server called twice on one Shared (impossible today)
    }
    for (idx, wake_rx) in plan {
        let shard_shared = Arc::clone(&shared);
        let t = std::thread::Builder::new()
            .name(format!("verdict-io-{idx}"))
            .spawn(move || shard_loop(idx, wake_rx, shard_shared));
        match t {
            Ok(t) => shard_threads.push(t),
            Err(_) => {
                shared.force_stop();
                break;
            }
        }
    }
    let mut worker_threads = Vec::with_capacity(shared.cfg.workers);
    for idx in 0..shared.cfg.workers {
        let worker_shared = Arc::clone(&shared);
        if let Ok(t) = std::thread::Builder::new()
            .name(format!("verdict-exec-{idx}"))
            .spawn(move || worker_loop(worker_shared))
        {
            worker_threads.push(t);
        }
    }

    accept_loop(listener, &shared);

    // Accepting has stopped (drain). Let the shards finish their
    // connections, then release the workers once no shard can enqueue.
    for t in shard_threads {
        let _ = t.join();
    }
    shared.workers_done.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    for t in worker_threads {
        let _ = t.join();
    }
}

/// Accepts connections (nonblocking, poll-gated) and deals them round-robin
/// to the I/O shards until a drain is requested.
fn accept_loop(listener: TcpListener, shared: &Shared) {
    if listener.set_nonblocking(true).is_err() {
        shared.force_stop();
        return;
    }
    let channels = shared.channels.get().expect("channels initialised");
    let handle = verdict_poll::listener_handle(&listener);
    let mut next_shard = 0usize;
    while !shared.draining.load(Ordering::SeqCst) {
        let mut fds = [PollFd::new(handle, POLLIN)];
        let _ = poll(&mut fds, 100);
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    shared.stats.sessions_active.fetch_add(1, Ordering::Relaxed);
                    let ch = &channels[next_shard % channels.len()];
                    next_shard = next_shard.wrapping_add(1);
                    ch.inbox.lock().unwrap().push(stream);
                    ch.waker.wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Transient accept failure (aborted handshake, fd
                    // exhaustion): back off briefly instead of spinning.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }
    // Dropping the listener closes the accepting socket immediately.
}

/// One I/O shard: multiplexes its connections with a poll loop, parses
/// request lines, runs admission control, and flushes response bytes.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    read_buf: Vec<u8>,
    eof: bool,
}

fn shard_loop(idx: usize, mut wake_rx: TcpStream, shared: Arc<Shared>) {
    let channels = shared.channels.get().expect("channels initialised");
    let my_channel = &channels[idx];
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let wake_handle = poll_handle(&wake_rx);
    let mut fds: Vec<PollFd> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    loop {
        let force = shared.force_stopped();
        let draining = shared.draining.load(Ordering::SeqCst);

        // Adopt freshly accepted connections.
        for stream in my_channel.inbox.lock().unwrap().drain(..) {
            let session = VerdictSession::new(Arc::clone(&shared.ctx));
            let conn_shared = Arc::new(ConnShared::new(
                session,
                Waker {
                    tx: Arc::clone(&my_channel.waker.tx),
                },
            ));
            conns.insert(
                next_id,
                Conn {
                    stream,
                    shared: conn_shared,
                    read_buf: Vec::new(),
                    eof: false,
                },
            );
            next_id += 1;
        }

        if force {
            // Hard stop: one last flush attempt per connection, then close.
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                if let Some(conn) = conns.get_mut(&id) {
                    let _ = flush_outbound(conn);
                }
                close_conn(&shared, &mut conns, id);
            }
            return;
        }

        // Pump every connection: parse buffered requests when idle, flush
        // pending output, reap finished/dead connections.
        let conn_ids: Vec<u64> = conns.keys().copied().collect();
        for id in conn_ids {
            let mut remove = false;
            if let Some(conn) = conns.get_mut(&id) {
                if !conn.shared.is_dead() {
                    pump_conn(&shared, conn, draining);
                }
                let cs = &conn.shared;
                let idle = !cs.busy.load(Ordering::SeqCst);
                let flushed = cs.outbound_len() == 0;
                remove = cs.is_dead()
                    || (cs.close_after_flush.load(Ordering::SeqCst) && idle && flushed)
                    || (conn.eof && idle && flushed)
                    || (draining && idle && flushed);
            }
            if remove {
                close_conn(&shared, &mut conns, id);
            }
        }

        if draining && conns.is_empty() && my_channel.inbox.lock().unwrap().is_empty() {
            return;
        }

        // Build the poll set: the wake channel plus every connection, with
        // interests derived from its state. A busy or backpressured
        // connection registers no read interest — that is the bound on
        // per-connection buffering — but errors and hangups surface anyway.
        fds.clear();
        ids.clear();
        fds.push(PollFd::new(wake_handle, POLLIN));
        ids.push(0);
        for (id, conn) in &conns {
            let cs = &conn.shared;
            let mut events = 0i16;
            if !conn.eof
                && !cs.busy.load(Ordering::SeqCst)
                && conn.read_buf.len() < MAX_REQUEST_BYTES + 1
                && cs.outbound_len() <= shared.cfg.write_buffer_bytes
            {
                events |= POLLIN;
            }
            if cs.outbound_len() > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(poll_handle(&conn.stream), events));
            ids.push(*id);
        }
        let _ = poll(&mut fds, 100);

        if fds[0].readable() {
            let mut buf = [0u8; 256];
            loop {
                match wake_rx.read(&mut buf) {
                    Ok(0) => break, // wake peer gone: shutdown under way
                    Ok(_) => continue,
                    Err(_) => break, // WouldBlock: drained
                }
            }
        }
        for (slot, id) in ids.iter().enumerate().skip(1) {
            let fd = fds[slot];
            if fd.revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(id) else {
                continue;
            };
            if fd.failed() {
                close_conn(&shared, &mut conns, *id);
                continue;
            }
            if fd.hangup() && !fd.readable() {
                // Peer reset with nothing left to read.
                close_conn(&shared, &mut conns, *id);
                continue;
            }
            if fd.readable() && !conn.eof && read_into_buf(conn).is_err() {
                close_conn(&shared, &mut conns, *id);
                continue;
            }
            if fd.writable() && flush_outbound(conn).is_err() {
                close_conn(&shared, &mut conns, *id);
            }
        }
    }
}

/// Reads available bytes into the connection's bounded request buffer.
/// EOF (a half-close) is recorded, not fatal: an in-flight statement still
/// gets its response (and a `STREAM` its remaining frames) before close.
fn read_into_buf(conn: &mut Conn) -> std::io::Result<()> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.read_buf.len() > MAX_REQUEST_BYTES {
            return Ok(()); // oversized: the parser answers and closes
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return Ok(());
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Writes pending outbound bytes until the socket would block.  Dropping
/// below half the high watermark wakes any backpressured worker.
fn flush_outbound(conn: &mut Conn) -> std::io::Result<()> {
    let cs = &conn.shared;
    let mut out = cs.out.lock().unwrap();
    let before = out.len();
    while !out.is_empty() {
        let (head, _) = out.as_slices();
        match conn.stream.write(head) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket wrote zero bytes",
                ))
            }
            Ok(n) => {
                out.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                drop(out);
                cs.dead.store(true, Ordering::SeqCst);
                cs.can_write.notify_all();
                return Err(e);
            }
        }
    }
    if before > out.len() {
        cs.can_write.notify_all();
    }
    Ok(())
}

/// Parses as many buffered request lines as the connection's state allows:
/// at most one statement in flight, inline transport verbs answered on the
/// spot, admission control applied to everything else.
fn pump_conn(shared: &Shared, conn: &mut Conn, draining: bool) {
    loop {
        let cs = &conn.shared;
        if cs.busy.load(Ordering::SeqCst)
            || cs.close_after_flush.load(Ordering::SeqCst)
            || cs.is_dead()
        {
            return;
        }
        // An unread outbound backlog pauses parsing too: a client that
        // floods requests without reading responses is bounded by its own
        // buffers, not the server's memory.
        if cs.outbound_len() > shared.cfg.write_buffer_bytes {
            return;
        }
        let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            if conn.read_buf.len() >= MAX_REQUEST_BYTES {
                let mut frame = String::new();
                write_error_frame(&mut frame, "request line exceeds the 1 MiB protocol limit");
                shared.count_error();
                cs.push_unbounded(&frame);
                cs.close_after_flush.store(true, Ordering::SeqCst);
                conn.read_buf.clear();
            }
            return;
        };
        let line: Vec<u8> = conn.read_buf.drain(..=newline).collect();
        let request = String::from_utf8_lossy(&line[..newline]);
        let request = request.trim_end_matches('\r').trim();
        if request.is_empty() {
            continue;
        }
        handle_request_line(shared, conn, request, draining);
    }
}

/// Routes one parsed request line: transport verbs inline, everything else
/// through admission control onto the run queue.
fn handle_request_line(shared: &Shared, conn: &Conn, request: &str, draining: bool) {
    let cs = &conn.shared;
    let verb = request
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    match verb.as_str() {
        // Transport-level commands are answered on the I/O shard so the
        // server stays observably responsive even with a saturated queue.
        "PING" => {
            let mut frame = String::new();
            write_result_frame(&mut frame, &FrameHeader::default(), None, &[], &[]);
            cs.push_unbounded(&frame);
        }
        "QUIT" => {
            let mut frame = String::new();
            write_result_frame(&mut frame, &FrameHeader::default(), None, &[], &[]);
            cs.push_unbounded(&frame);
            cs.close_after_flush.store(true, Ordering::SeqCst);
        }
        "SHUTDOWN" => {
            // Graceful drain: acknowledge, then stop accepting and refuse
            // new statements. In-flight statements finish and flush first.
            let mut frame = String::new();
            write_result_frame(
                &mut frame,
                &FrameHeader::default(),
                None,
                &[],
                &[("response".into(), "draining".into())],
            );
            cs.push_unbounded(&frame);
            shared.request_drain();
        }
        _ => {
            if draining {
                let mut frame = String::new();
                write_coded_error_frame(
                    &mut frame,
                    ErrorCode::Shutdown,
                    "server is draining; no new statements are accepted",
                );
                shared.count_error();
                cs.push_unbounded(&frame);
                return;
            }
            match shared.admission.try_admit() {
                Admission::Refuse => {
                    let mut frame = String::new();
                    write_coded_error_frame(
                        &mut frame,
                        ErrorCode::Busy,
                        &format!(
                            "run queue at capacity ({}); retry with backoff",
                            shared.cfg.queue_capacity
                        ),
                    );
                    shared.count_error();
                    cs.push_unbounded(&frame);
                }
                Admission::Admit(tier) => {
                    let deadline = {
                        let session = cs.session.lock().unwrap();
                        session
                            .options()
                            .deadline_ms
                            .map(|ms| Instant::now() + Duration::from_millis(ms))
                    };
                    cs.busy.store(true, Ordering::SeqCst);
                    let task = Task {
                        conn: Arc::clone(&conn.shared),
                        request: request.to_string(),
                        tier,
                        deadline,
                    };
                    let mut queue = shared.queue.lock().unwrap();
                    queue.push_back(task);
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
        }
    }
}

fn close_conn(shared: &Shared, conns: &mut HashMap<u64, Conn>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        conn.shared.dead.store(true, Ordering::SeqCst);
        conn.shared.can_write.notify_all();
        shared.stats.sessions_active.fetch_sub(1, Ordering::Relaxed);
        // The TcpStream closes on drop; a queued task for this connection
        // is reaped by the worker (it checks `dead` before executing).
    }
}

/// Releases an admitted statement's resources exactly once — also on an
/// unwind out of the engine — so the run queue can never leak capacity.
struct TaskGuard {
    conn: Arc<ConnShared>,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        self.conn.busy.store(false, Ordering::SeqCst);
        self.conn.waker.wake();
    }
}

/// One executor worker: drains the bounded run queue, executing statements
/// over the connection's session and writing response frames through the
/// connection's sink.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.workers_done.load(Ordering::SeqCst) || shared.force_stopped() {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap();
                queue = guard;
            }
        };
        let guard = TaskGuard {
            conn: Arc::clone(&task.conn),
        };
        let release = &shared.admission;
        if !task.conn.is_dead() && !shared.force_stopped() {
            dispatch::run_task(&shared, &task);
        }
        release.release();
        drop(guard);
    }
}
