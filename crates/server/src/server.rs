//! The concurrent serving layer: a TCP listener, one session thread per
//! connection, all sharing a single [`VerdictContext`] (and therefore one
//! engine catalog, one sample-metadata registry, and one approximate-answer
//! cache) behind an `Arc`.
//!
//! The paper pitches VerdictDB as a driver-level layer that many clients
//! query concurrently; this module supplies the missing transport.  All
//! shared state is interior-mutable and lock-protected (`Catalog` and
//! `MetaStore` behind `RwLock`s, the cache behind a `Mutex`, the engine's
//! seed counter behind a `Mutex`), so sessions need no coordination beyond
//! cloning the `Arc`.
//!
//! The protocol has **one work verb**: `SQL <statement>`.  Each connection
//! owns a [`verdict_core::VerdictSession`], so the full SQL surface —
//! queries, scramble DDL (`CREATE SCRAMBLE`, `DROP SCRAMBLE[S]`,
//! `REFRESH SCRAMBLE[S]`, `SHOW SCRAMBLES`), `BYPASS`, session-scoped
//! `SET <option> = <value>`, and `SHOW STATS` — is reachable over the wire
//! exactly as it is in-process.  The pre-SQL verbs (`QUERY`, `EXACT`,
//! `SAMPLE`, `REFRESH`, `STATS`) survive as thin deprecated aliases that
//! rewrite themselves into SQL and go through the same session dispatch.
//! `PING` and `QUIT` are transport-level and unchanged.
//!
//! `STREAM <query>` is the one multi-frame verb: the response is a sequence
//! of `FRAME …` result frames — each flushed as the progressive execution
//! refines its estimate — closed by a `DONE frames=<n>` mini-frame (see
//! [`crate::protocol::StreamFrameHeader`]).  Clients that predate streaming
//! simply never send it; `SQL STREAM SELECT …` still answers with a single
//! classic `OK` frame carrying the stream's final answer.

use crate::protocol::{
    write_error_frame, write_result_frame, write_stream_done, write_stream_frame, FrameHeader,
    StreamFrameHeader,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use verdict_core::{
    SampleMeta, SampleType, VerdictAnswer, VerdictContext, VerdictResponse, VerdictSession,
};

/// Aggregate serving counters, shared by every session.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions accepted since the server started.
    pub sessions_opened: AtomicU64,
    /// Sessions currently connected.
    pub sessions_active: AtomicU64,
    /// SQL statements dispatched (including errors; `SQL` and every
    /// deprecated alias count, `PING`/`QUIT` do not).
    pub queries_served: AtomicU64,
    /// Requests that produced an `ERR` frame.
    pub errors: AtomicU64,
}

struct Shared {
    ctx: Arc<VerdictContext>,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// A VerdictDB server bound to a TCP address but not yet accepting.
pub struct VerdictServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a running server: address, stats access, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl VerdictServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) over a shared
    /// context.  The context's answer cache makes repeated queries cheap;
    /// enable it via [`verdict_core::VerdictConfig::answer_cache_capacity`].
    pub fn bind(addr: &str, ctx: Arc<VerdictContext>) -> std::io::Result<VerdictServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(VerdictServer {
            listener,
            shared: Arc::new(Shared {
                ctx,
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop on a background thread and returns a handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept_thread = std::thread::Builder::new()
            .name("verdict-accept".into())
            .spawn(move || accept_loop(listener, shared))?;
        Ok(ServerHandle {
            addr,
            shared: self.shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Runs the accept loop on the calling thread until the shutdown flag is
    /// set — which the `verdict-server` binary never does, so effectively
    /// forever.  Transient accept failures (aborted handshakes, momentary fd
    /// exhaustion) are skipped with a short backoff rather than allowed to
    /// take down the whole server and its warmed cache.
    pub fn serve_forever(self) -> std::io::Result<()> {
        accept_loop(self.listener, self.shared);
        Ok(())
    }
}

/// The shared accept loop: one session thread per connection, a short
/// backoff on transient accept errors, exit on the shutdown flag.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            // Transient accept failure (aborted handshake, fd exhaustion):
            // back off briefly instead of spinning.
            Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        let session_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("verdict-session".into())
            .spawn(move || run_session(stream, session_shared));
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving context.
    pub fn context(&self) -> &Arc<VerdictContext> {
        &self.shared.ctx
    }

    /// The aggregate serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Stops accepting new sessions and joins the accept thread.  Existing
    /// sessions finish when their clients disconnect.  Dropping the handle
    /// has the same effect; this method just makes the intent explicit.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn run_session(stream: TcpStream, shared: Arc<Shared>) {
    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    shared.stats.sessions_active.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.stats.sessions_active.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    });
    let mut writer = stream;
    let mut line = String::new();
    // Each connection is one middleware session: its SET options live here
    // and die with the socket, while the context stays shared.
    let mut session = VerdictSession::new(Arc::clone(&shared.ctx));
    loop {
        line.clear();
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) | Err(_) => break, // EOF, broken connection, or oversized line
            Ok(_) => {}
        }
        let request = line.trim_end_matches(['\r', '\n']);
        if request.is_empty() {
            continue;
        }
        // The streaming verb writes (and flushes) one frame at a time as the
        // progressive execution refines, so it owns the socket directly;
        // everything else builds one buffered response frame.
        if let Some(rest) = strip_verb(request, "STREAM") {
            if handle_stream(rest, &shared, &mut session, &mut writer).is_err() {
                break;
            }
            continue;
        }
        let mut response = String::new();
        let quit = handle_request(request, &shared, &mut session, &mut response);
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if quit {
            break;
        }
    }
    shared.stats.sessions_active.fetch_sub(1, Ordering::Relaxed);
}

/// Longest accepted request line.  A line-based protocol must bound its
/// buffering: without a cap, one client streaming bytes with no newline
/// would grow server memory without limit.
const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// `read_line` with the [`MAX_REQUEST_BYTES`] cap; an unterminated line at
/// the cap is an error (the session is dropped rather than desynchronised).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    let n = reader.by_ref().take(MAX_REQUEST_BYTES).read_line(line)?;
    if n as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line exceeds the 1 MiB protocol limit",
        ));
    }
    Ok(n)
}

/// Dispatches one request line, appending the full response frame to `out`.
/// Returns true when the session should close.
///
/// `SQL <statement>` is the protocol; everything else (bar `PING`/`QUIT`)
/// is a deprecated alias rewritten into SQL and pushed through the same
/// per-connection session.
fn handle_request(
    request: &str,
    shared: &Shared,
    session: &mut VerdictSession,
    out: &mut String,
) -> bool {
    let (verb, rest) = match request.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "SQL" => dispatch_sql(rest, shared, session, out),
        // ---- deprecated aliases, kept for old clients -------------------
        "QUERY" => dispatch_sql(rest, shared, session, out),
        "EXACT" => dispatch_sql(&format!("BYPASS {rest}"), shared, session, out),
        "SAMPLE" => match legacy_sample_to_sql(rest) {
            Ok(sql) => dispatch_sql(&sql, shared, session, out),
            Err(msg) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                write_error_frame(out, msg);
            }
        },
        "REFRESH" => {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(base), Some(batch), None) => {
                    let sql = format!("REFRESH SCRAMBLES {base} FROM {batch}");
                    dispatch_sql(&sql, shared, session, out);
                }
                _ => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    write_error_frame(out, "usage: REFRESH <base_table> <batch_table>");
                }
            }
        }
        "STATS" => dispatch_sql("SHOW STATS", shared, session, out),
        // A bare STREAM with no query (the with-query form is intercepted in
        // the session loop because it writes frames incrementally).
        "STREAM" => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            write_error_frame(out, "usage: STREAM <query>");
        }
        // ---- transport-level commands -----------------------------------
        "PING" => write_result_frame(out, &FrameHeader::default(), None, &[], &[]),
        "QUIT" => {
            write_result_frame(out, &FrameHeader::default(), None, &[], &[]);
            return true;
        }
        other => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            write_error_frame(out, &format!("unknown command {other}"));
        }
    }
    false
}

/// Case-insensitively strips a leading verb followed by whitespace,
/// returning the trimmed remainder.
fn strip_verb<'a>(request: &'a str, verb: &str) -> Option<&'a str> {
    let (head, rest) = request.split_once(char::is_whitespace)?;
    head.eq_ignore_ascii_case(verb).then(|| rest.trim())
}

/// `STREAM <query>` — the multi-frame response: one `FRAME …` result frame
/// per progressive refinement, closed by a `DONE frames=<n>` mini-frame.
/// Each frame is flushed as soon as the execution produces it, so clients
/// see the estimate tighten in real time.  Errors before the first frame
/// produce a regular `ERR` frame; an error mid-stream ends the response
/// with an `ERR` frame in place of further `FRAME`s (clients treat the
/// stream as failed).  Returns `Err` only for socket-level failures.
fn handle_stream(
    sql: &str,
    shared: &Shared,
    session: &mut VerdictSession,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    shared.stats.queries_served.fetch_add(1, Ordering::Relaxed);
    let mut send = |buf: &str| -> std::io::Result<()> {
        writer.write_all(buf.as_bytes())?;
        writer.flush()
    };
    let stream = match session.stream(sql) {
        Ok(stream) => stream,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            let mut out = String::new();
            write_error_frame(&mut out, &e.to_string());
            return send(&out);
        }
    };
    let mut frames = 0usize;
    for frame in stream {
        match frame {
            Ok(frame) => {
                frames += 1;
                let mut out = String::new();
                write_answer_stream_frame(&frame, &mut out);
                send(&out)?;
            }
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let mut out = String::new();
                write_error_frame(&mut out, &e.to_string());
                return send(&out);
            }
        }
    }
    let mut out = String::new();
    write_stream_done(&mut out, frames);
    send(&out)
}

fn write_answer_stream_frame(frame: &verdict_core::ProgressFrame, out: &mut String) {
    let answer = &frame.answer;
    let header = StreamFrameHeader {
        base: FrameHeader {
            rows: answer.table.num_rows(),
            cols: answer.table.schema.fields.len(),
            exact: answer.exact,
            cached: answer.cached,
            elapsed_us: answer.elapsed.as_micros() as u64,
            rows_scanned: answer.rows_scanned,
        },
        frame: frame.index,
        rows_seen: frame.rows_seen,
        total_rows: frame.total_rows,
        fraction: frame.fraction,
        last: frame.last,
        early_stopped: frame.early_stopped,
    };
    let errors: Vec<(String, f64, f64)> = answer
        .errors
        .iter()
        .map(|e| {
            (
                e.column.clone(),
                e.mean_relative_error,
                e.max_relative_error,
            )
        })
        .collect();
    let extras: Vec<(String, String)> = answer
        .used_samples
        .iter()
        .map(|s| ("used_sample".to_string(), s.clone()))
        .collect();
    write_stream_frame(out, &header, Some(&answer.table), &errors, &extras);
}

/// `SAMPLE <table> <uniform|hashed|stratified> [col,col,…]` → `CREATE
/// SCRAMBLE` text with the same derived scramble name the old handler used.
fn legacy_sample_to_sql(rest: &str) -> Result<String, &'static str> {
    let mut parts = rest.split_whitespace();
    let (table, kind) = match (parts.next(), parts.next()) {
        (Some(t), Some(k)) => (t, k.to_ascii_lowercase()),
        _ => return Err("usage: SAMPLE <table> <type> [columns]"),
    };
    let columns: Vec<String> = parts
        .next()
        .map(|c| c.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_default();
    if parts.next().is_some() {
        // A space-separated column list would silently build a sample over
        // the wrong column set — reject instead of truncating.
        return Err(
            "unexpected trailing arguments; columns must be comma-separated without spaces",
        );
    }
    let sample_type = match kind.as_str() {
        "uniform" => SampleType::Uniform,
        "hashed" if !columns.is_empty() => SampleType::Hashed {
            columns: columns.clone(),
        },
        "stratified" if !columns.is_empty() => SampleType::Stratified {
            columns: columns.clone(),
        },
        _ => return Err("sample type must be uniform, or hashed/stratified with columns"),
    };
    let name = SampleMeta::table_name_for(table, &sample_type);
    let mut sql = format!("CREATE SCRAMBLE {name} FROM {table} METHOD {kind}");
    if !columns.is_empty() {
        sql.push_str(&format!(" ON {}", columns.join(", ")));
    }
    Ok(sql)
}

/// Runs one SQL statement through the connection's session and serialises
/// the unified [`VerdictResponse`] into a protocol frame.
fn dispatch_sql(sql: &str, shared: &Shared, session: &mut VerdictSession, out: &mut String) {
    shared.stats.queries_served.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    match session.execute(sql) {
        Ok(VerdictResponse::Answer(answer)) => write_answer_frame(&answer, out),
        Ok(response) => write_response_frame(&response, start, shared, out),
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            write_error_frame(out, &e.to_string());
        }
    }
}

fn write_answer_frame(answer: &VerdictAnswer, out: &mut String) {
    let header = FrameHeader {
        rows: answer.table.num_rows(),
        cols: answer.table.schema.fields.len(),
        exact: answer.exact,
        cached: answer.cached,
        elapsed_us: answer.elapsed.as_micros() as u64,
        rows_scanned: answer.rows_scanned,
    };
    let errors: Vec<(String, f64, f64)> = answer
        .errors
        .iter()
        .map(|e| {
            (
                e.column.clone(),
                e.mean_relative_error,
                e.max_relative_error,
            )
        })
        .collect();
    let extras: Vec<(String, String)> = answer
        .used_samples
        .iter()
        .map(|s| ("used_sample".to_string(), s.clone()))
        .collect();
    write_result_frame(out, &header, Some(&answer.table), &errors, &extras);
}

/// Serialises the non-answer [`VerdictResponse`] variants.  Tabular
/// responses (`SHOW SCRAMBLES` / `SHOW STATS`) ship the table itself;
/// `SHOW STATS` additionally mirrors its rows as `S key value` lines (the
/// pre-SQL `STATS` format) and appends the transport-level counters the
/// core session cannot see.
fn write_response_frame(
    response: &VerdictResponse,
    start: Instant,
    shared: &Shared,
    out: &mut String,
) {
    let mut header = FrameHeader {
        elapsed_us: start.elapsed().as_micros() as u64,
        ..FrameHeader::default()
    };
    let mut extras: Vec<(String, String)> = vec![("response".to_string(), response.kind().into())];
    let mut table = None;
    match response {
        VerdictResponse::Answer(_) => unreachable!("answers use write_answer_frame"),
        VerdictResponse::ScramblesCreated(metas) => {
            extras.push(("scrambles_created".to_string(), metas.len().to_string()));
            if let [meta] = metas.as_slice() {
                // Legacy keys old SAMPLE clients read.
                extras.push(("sample_table".to_string(), meta.sample_table.clone()));
                extras.push(("sample_rows".to_string(), meta.sample_rows.to_string()));
                extras.push(("base_rows".to_string(), meta.base_rows.to_string()));
            }
            for meta in metas {
                extras.push(("scramble".to_string(), meta.sample_table.clone()));
            }
        }
        VerdictResponse::ScramblesDropped(n) => {
            extras.push(("scrambles_dropped".to_string(), n.to_string()));
        }
        VerdictResponse::ScramblesRefreshed(n) => {
            extras.push(("refreshed_samples".to_string(), n.to_string()));
        }
        VerdictResponse::Scrambles(t) => {
            header.rows = t.num_rows();
            header.cols = t.schema.fields.len();
            table = Some(t);
        }
        VerdictResponse::Stats(t) => {
            header.rows = t.num_rows();
            header.cols = t.schema.fields.len();
            for row in 0..t.num_rows() {
                extras.push((t.value(row, 0).to_string(), t.value(row, 1).to_string()));
            }
            let stats = &shared.stats;
            extras.push((
                "sessions_opened".to_string(),
                stats.sessions_opened.load(Ordering::Relaxed).to_string(),
            ));
            extras.push((
                "sessions_active".to_string(),
                stats.sessions_active.load(Ordering::Relaxed).to_string(),
            ));
            extras.push((
                "queries_served".to_string(),
                stats.queries_served.load(Ordering::Relaxed).to_string(),
            ));
            extras.push((
                "errors".to_string(),
                stats.errors.load(Ordering::Relaxed).to_string(),
            ));
            table = Some(t);
        }
        VerdictResponse::OptionSet { name, value } => {
            extras.push(("option".to_string(), name.clone()));
            extras.push(("value".to_string(), value.clone()));
        }
    }
    write_result_frame(out, &header, table, &[], &extras);
}
