//! End-to-end tests: spawn the server on an ephemeral port and drive it
//! through real TCP sessions, asserting the protocol answers are
//! bit-identical to the in-process path and that the approximate-answer
//! cache serves repeats / invalidates on appends.

use std::sync::Arc;
use verdict_core::{SampleType, VerdictAnswer, VerdictConfig, VerdictContext};
use verdict_engine::{Backend, Engine, TableBuilder, Value};
use verdict_server::{ClientError, RemoteAnswer, VerdictClient, VerdictServer};

/// 50k-row synthetic sales table: 10 cities, deterministic prices.
fn sales_engine(seed: u64) -> Engine {
    let engine = Engine::with_seed(seed);
    let rows = 50_000usize;
    let table = TableBuilder::new()
        .int_column("id", (0..rows as i64).collect())
        .float_column(
            "price",
            (0..rows).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect(),
        )
        .str_column(
            "city",
            (0..rows).map(|i| format!("city_{}", i % 10)).collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    engine
}

fn serving_context(seed: u64, cache_capacity: usize) -> Arc<VerdictContext> {
    let engine = sales_engine(seed);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = cache_capacity;
    let ctx = VerdictContext::new(conn, config);
    ctx.create_sample("sales", SampleType::Uniform).unwrap();
    Arc::new(ctx)
}

/// Exact variant-level equality: floats compare by bit pattern, so this is
/// stricter than `Value == Value` (which coerces Int vs Float).
fn values_bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

fn assert_remote_matches_local(remote: &RemoteAnswer, local: &VerdictAnswer) {
    assert_eq!(remote.header.rows, local.table.num_rows());
    assert_eq!(remote.header.cols, local.table.schema.fields.len());
    assert_eq!(remote.header.exact, local.exact);
    let names: Vec<String> = local
        .table
        .schema
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect();
    assert_eq!(remote.columns, names);
    for row in 0..local.table.num_rows() {
        for col in 0..names.len() {
            let l = local.table.value_at(row, col);
            let r = remote.value(row, col);
            assert!(
                values_bit_identical(r, &l),
                "row {row} col {col}: remote {r:?} != local {l:?}"
            );
        }
    }
    assert_eq!(remote.errors.len(), local.errors.len());
    for ((rc, rmean, rmax), le) in remote.errors.iter().zip(&local.errors) {
        assert_eq!(rc, &le.column);
        assert_eq!(rmean.to_bits(), le.mean_relative_error.to_bits());
        assert_eq!(rmax.to_bits(), le.max_relative_error.to_bits());
    }
}

const DASHBOARD_QUERY: &str =
    "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city";

#[test]
fn four_concurrent_sessions_match_the_serial_in_process_path() {
    let ctx = serving_context(21, 64);
    // The serial in-process reference, computed before any session connects.
    let local_approx = ctx.execute(DASHBOARD_QUERY).unwrap();
    assert!(
        !local_approx.exact,
        "query should be answered from the sample"
    );
    let local_exact = ctx
        .execute_exact("SELECT count(*) AS n, min(price) AS lo, max(price) AS hi FROM sales")
        .unwrap();

    let handle = VerdictServer::bind("127.0.0.1:0", Arc::clone(&ctx))
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut client = VerdictClient::connect(addr).unwrap();
                for _ in 0..5 {
                    let remote = client.query(DASHBOARD_QUERY).unwrap();
                    assert!(remote.header.cached, "repeat must be served from cache");
                    assert_remote_matches_local(&remote, &local_approx);
                    let exact = client
                        .exact(
                            "SELECT count(*) AS n, min(price) AS lo, max(price) AS hi FROM sales",
                        )
                        .unwrap();
                    assert_remote_matches_local(&exact, &local_exact);
                }
                client.quit().unwrap();
            });
        }
    });

    assert!(
        handle
            .stats()
            .sessions_opened
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 4
    );
    handle.stop();
}

#[test]
fn cached_repeat_is_identical_and_append_invalidates() {
    let ctx = serving_context(5, 64);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    let first = client.query(DASHBOARD_QUERY).unwrap();
    assert!(!first.header.cached);
    assert!(!first.header.exact);
    assert!(
        !first.errors.is_empty(),
        "approximate answer carries error bounds"
    );

    // Same query, different whitespace / keyword case / table & predicate
    // identifier case (projection output names — the bare `city` column and
    // the `ap` alias — keep their case because they shape the result
    // schema): canonicalisation maps it to the same entry and the stored
    // answer comes back bit-identically.
    let second = client
        .query("select   city, AVG(Price) as ap from Sales group by CITY order by CITY")
        .unwrap();
    assert!(second.header.cached);
    assert_eq!(second.header.rows_scanned, first.header.rows_scanned);
    assert_eq!(second.columns, first.columns);
    for (r1, r2) in first.rows.iter().zip(&second.rows) {
        for (v1, v2) in r1.iter().zip(r2) {
            assert!(values_bit_identical(v1, v2));
        }
    }
    for ((c1, m1, x1), (c2, m2, x2)) in first.errors.iter().zip(&second.errors) {
        assert_eq!(c1, c2);
        assert_eq!(m1.to_bits(), m2.to_bits());
        assert_eq!(x1.to_bits(), x2.to_bits());
    }

    // Append new rows to the base table through the same protocol: the next
    // repeat must be recomputed, not served stale.
    client
        .exact("CREATE TABLE sales_batch AS SELECT id, price, city FROM sales LIMIT 1000")
        .unwrap();
    client
        .exact("INSERT INTO sales SELECT * FROM sales_batch")
        .unwrap();
    let third = client.query(DASHBOARD_QUERY).unwrap();
    assert!(
        !third.header.cached,
        "append must invalidate the cached answer"
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.extra("cache_invalidations"), Some("1"));
    assert!(stats.extra("cache_hits").is_some());
    client.quit().unwrap();
    handle.stop();
}

#[test]
fn sample_and_refresh_commands_round_trip() {
    let engine = sales_engine(3);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 16;
    let ctx = Arc::new(VerdictContext::new(conn, config));
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    let built = client.create_sample("sales", "uniform", &[]).unwrap();
    let sample_table = built.extra("sample_table").unwrap().to_string();
    assert!(sample_table.contains("sales"));
    let sample_rows: u64 = built.extra("sample_rows").unwrap().parse().unwrap();
    assert!(sample_rows > 0);

    // Approximate queries now work over the freshly built sample.
    let answer = client.query(DASHBOARD_QUERY).unwrap();
    assert!(!answer.header.exact);

    // Appendix D maintenance over the wire: append a batch, refresh samples.
    client
        .exact("CREATE TABLE sales_batch AS SELECT id, price, city FROM sales LIMIT 2000")
        .unwrap();
    client
        .exact("INSERT INTO sales SELECT * FROM sales_batch")
        .unwrap();
    let refreshed = client.refresh("sales", "sales_batch").unwrap();
    assert_eq!(refreshed.extra("refreshed_samples"), Some("1"));

    client.quit().unwrap();
    handle.stop();
}

#[test]
fn errors_are_frames_and_sessions_survive_them() {
    let ctx = serving_context(9, 4);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    match client.query("SELEKT nonsense") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("parse"), "got: {msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    match client.request("FROBNICATE x") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown command")),
        other => panic!("expected server error, got {other:?}"),
    }
    // The session is still usable after both error frames.
    let answer = client.exact("SELECT count(*) AS n FROM sales").unwrap();
    assert_eq!(answer.value(0, 0).as_i64(), Some(50_000));

    // Multi-line SQL must not desynchronize the request/response stream:
    // the client collapses the line breaks into one request line.
    let multiline = client
        .exact("SELECT count(*) AS n\nFROM sales\r\nWHERE price < 50.0")
        .unwrap();
    assert_eq!(multiline.header.rows, 1);
    let next = client.exact("SELECT count(*) AS n FROM sales").unwrap();
    assert_eq!(
        next.value(0, 0).as_i64(),
        Some(50_000),
        "the frame after a multi-line request must answer the right call"
    );
    client.ping().unwrap();
    client.quit().unwrap();
    handle.stop();
}

#[test]
fn awkward_string_values_round_trip_over_the_wire() {
    let engine = Engine::with_seed(1);
    let table = TableBuilder::new()
        .int_column("id", vec![1, 2, 3, 4])
        .str_column(
            "label",
            vec![
                "plain".to_string(),
                "tab\there".to_string(),
                "line\nbreak".to_string(),
                "back\\slash \\N".to_string(),
            ],
        )
        .build()
        .unwrap();
    engine.register_table("notes", table);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let ctx = Arc::new(VerdictContext::new(conn, VerdictConfig::for_testing()));
    let local = ctx
        .execute_exact("SELECT id, label FROM notes ORDER BY id")
        .unwrap();

    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();
    let remote = client
        .exact("SELECT id, label FROM notes ORDER BY id")
        .unwrap();
    assert_remote_matches_local(&remote, &local);
    client.quit().unwrap();
    handle.stop();
}

// ---------------------------------------------------------------------------
// Progressive streaming over TCP (PR 5)
// ---------------------------------------------------------------------------

#[test]
fn stream_verb_emits_refining_frames_and_matches_the_one_shot_answer() {
    let ctx = serving_context(51, 64);
    let handle = VerdictServer::bind("127.0.0.1:0", Arc::clone(&ctx))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    // Small blocks force a multi-frame stream over the 1%-scramble.
    client.sql("SET stream_block_rows = 100").unwrap();
    let mut seen_live = 0usize;
    let frames = client
        .stream_with(DASHBOARD_QUERY, |_| seen_live += 1)
        .unwrap();
    assert!(
        frames.len() >= 2,
        "expected ≥2 frames, got {}",
        frames.len()
    );
    assert_eq!(seen_live, frames.len(), "callback fires once per frame");
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(f.frame, i + 1);
        assert_eq!(f.last, i + 1 == frames.len());
        if i > 0 {
            assert!(f.rows_seen > frames[i - 1].rows_seen);
        }
    }
    let last = frames.last().unwrap();
    assert!((last.fraction - 1.0).abs() < 1e-12);
    assert!(!last.early_stopped);

    // The final frame over the wire is bit-identical to the in-process
    // one-shot answer for the same query and options.
    let local = ctx.execute(DASHBOARD_QUERY).unwrap();
    assert_remote_matches_local(&last.answer, &local);

    // The connection stays usable after a stream (framing is clean).
    client.ping().unwrap();
    let after = client.sql("SHOW STATS").unwrap();
    assert!(after.extra("streams_started").is_some());

    // `SQL STREAM …` keeps the classic single-frame response for old
    // clients: exactly the final answer, one OK frame.
    let alias = client.sql(&format!("STREAM {DASHBOARD_QUERY}")).unwrap();
    assert_remote_matches_local(&alias, &local);
    let _ = client.quit();
    handle.stop();
}

#[test]
fn stream_early_stop_and_errors_keep_the_protocol_in_sync() {
    let ctx = serving_context(52, 64);
    let handle = VerdictServer::bind("127.0.0.1:0", Arc::clone(&ctx))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    // A loose target stops the stream after a strict prefix.
    client.sql("SET stream_block_rows = 50").unwrap();
    client.sql("SET target_error = 0.9").unwrap();
    let frames = client
        .stream("SELECT sum(price) AS total FROM sales")
        .unwrap();
    let last = frames.last().unwrap();
    assert!(last.early_stopped, "loose target must stop early");
    assert!(last.fraction < 1.0);

    // A bad statement answers with one ERR frame and leaves the session
    // usable.
    let err = client.stream("SELEKT nope").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "{err:?}");
    client.ping().unwrap();

    // A bare STREAM is a usage error, not a hang.
    let err = client.request("STREAM").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "{err:?}");
    client.ping().unwrap();
    let _ = client.quit();
    handle.stop();
}
