//! Fault-injection tests: drive the multiplexed server with deliberately
//! hostile clients — slow-loris writers, half-closed sockets, readers that
//! stop reading, oversized request lines, abrupt disconnects mid-query —
//! and assert the invariants the event loop exists to provide: no hostile
//! session can block another session's frames, no session leaks, and the
//! server stays drainable afterward.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use verdict_core::{SampleType, VerdictConfig, VerdictContext};
use verdict_engine::{Backend, Engine, TableBuilder};
use verdict_server::{ClientError, ServerHandle, VerdictClient, VerdictServer};

/// 50k-row synthetic sales table (same shape as the e2e fixture).
fn sales_engine(seed: u64) -> Engine {
    let engine = Engine::with_seed(seed);
    let rows = 50_000usize;
    let table = TableBuilder::new()
        .int_column("id", (0..rows as i64).collect())
        .float_column(
            "price",
            (0..rows).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect(),
        )
        .str_column(
            "city",
            (0..rows).map(|i| format!("city_{}", i % 10)).collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    engine
}

fn serving_context(seed: u64) -> Arc<VerdictContext> {
    let conn: Arc<dyn Backend> = Arc::new(sales_engine(seed));
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 64;
    let ctx = VerdictContext::new(conn, config);
    ctx.create_sample("sales", SampleType::Uniform).unwrap();
    Arc::new(ctx)
}

const QUERY: &str = "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city";

/// Waits (bounded) for the server's active-session gauge to come back to
/// `expected` — torn-down connections are reaped by the I/O shards on their
/// next poll tick, so the gauge trails the socket close by a few ms.
fn assert_sessions_settle(handle: &ServerHandle, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let active = handle
            .stats()
            .sessions_active
            .load(std::sync::atomic::Ordering::Relaxed);
        if active == expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "sessions_active stuck at {active}, expected {expected} — leaked sessions"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The `SHOW STATS` wire view must agree with the in-process gauge: this is
/// the leak check a real operator would run.
fn wire_sessions_active(addr: std::net::SocketAddr) -> u64 {
    let mut client = VerdictClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let active = stats
        .extra("sessions_active")
        .expect("SHOW STATS reports sessions_active")
        .parse::<u64>()
        .unwrap();
    client.quit().unwrap();
    // This probe connection was itself counted while it was open.
    active - 1
}

/// Drains the server and asserts it exits within the timeout — the final
/// invariant of every fault test: whatever the fault did, the server must
/// still shut down cleanly.
fn assert_drainable(handle: ServerHandle) {
    assert!(
        handle.drain(Duration::from_secs(10)),
        "server failed to drain after fault injection"
    );
}

#[test]
fn slow_loris_writer_does_not_block_other_sessions() {
    let ctx = serving_context(31);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();

    // The loris trickles a request one byte at a time with long pauses; the
    // request is never completed.  Meanwhile a well-behaved client on the
    // same server must see normal latencies.
    let mut loris = TcpStream::connect(handle.addr()).unwrap();
    loris.set_nodelay(true).unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loris_stop = Arc::clone(&stop);
    let loris_thread = std::thread::spawn(move || {
        for b in b"SQL SELECT count(*) AS n FROM sales".iter().cycle() {
            if loris_stop.load(std::sync::atomic::Ordering::Relaxed) {
                break;
            }
            if loris.write_all(&[*b]).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        loris
    });

    let mut client = VerdictClient::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for _ in 0..20 {
        let answer = client.sql(QUERY).expect("victim session must not stall");
        assert_eq!(answer.header.rows, 10);
    }
    client.quit().unwrap();

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let loris = loris_thread.join().unwrap();
    drop(loris);

    assert_sessions_settle(&handle, 0);
    assert_drainable(handle);
}

#[test]
fn half_closed_socket_still_receives_stream_frames() {
    let ctx = serving_context(32);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();

    // Send a STREAM request, then close the write half.  EOF on the read
    // side must not tear down the connection while the response is still
    // being produced: the stream's frames and DONE must all arrive.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    raw.write_all(b"SQL SET stream_block_rows = 50\n").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    // Consume the SET acknowledgement frame up to its terminator.
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        assert!(
            !line.starts_with("ERR "),
            "SET refused over the raw socket: {line}"
        );
        if line.trim_end() == "." {
            break;
        }
    }
    raw.write_all(format!("STREAM {QUERY}\n").as_bytes())
        .unwrap();
    raw.shutdown(Shutdown::Write).unwrap();

    let mut frames = 0usize;
    let mut done = false;
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.starts_with("FRAME ") {
            frames += 1;
        }
        if trimmed.starts_with("DONE ") {
            done = true;
        }
    }
    assert!(done, "half-closed session never saw DONE");
    assert!(
        frames >= 2,
        "expected a multi-frame stream over the half-closed socket, got {frames}"
    );
    drop(reader);
    drop(raw);

    assert_sessions_settle(&handle, 0);
    assert_drainable(handle);
}

#[test]
fn non_reading_client_is_isolated_by_write_backpressure() {
    let ctx = serving_context(33);
    // A small write buffer and a short stall timeout so the test observes
    // the backpressure path quickly.
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .with_write_buffer_bytes(4096)
        .with_write_stall_timeout(Duration::from_millis(500))
        .spawn()
        .unwrap();

    // The hog streams a large result but never reads a byte.  Its frames
    // back up in the server's bounded per-connection buffer (and the kernel
    // socket buffer); once no progress is made for the stall timeout the
    // server drops the connection rather than buffer without bound.
    let mut hog = TcpStream::connect(handle.addr()).unwrap();
    hog.set_nodelay(true).unwrap();
    hog.write_all(b"SQL SET stream_block_rows = 50\n").unwrap();
    hog.write_all(format!("STREAM {QUERY}\n").as_bytes())
        .unwrap();
    // Do not read.  While the hog is wedged, other sessions must answer.

    let mut client = VerdictClient::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for _ in 0..10 {
        let answer = client
            .sql(QUERY)
            .expect("non-reading hog must not wedge other sessions");
        assert_eq!(answer.header.rows, 10);
    }
    client.quit().unwrap();

    // The server eventually gives up on the hog (stall timeout) or the hog
    // disconnects here; either way the session count must return to zero.
    drop(hog);
    assert_sessions_settle(&handle, 0);
    assert_drainable(handle);
}

#[test]
fn oversized_request_line_gets_an_error_frame_then_close() {
    let ctx = serving_context(34);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();

    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    // 1 MiB + slack of request bytes with no newline.
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent < (1 << 20) + 4096 {
        match raw.write(&chunk) {
            Ok(n) => sent += n,
            // The server may have already errored the connection and closed
            // it; stopping here is fine — we still must find the ERR frame.
            Err(_) => break,
        }
    }
    raw.shutdown(Shutdown::Write).ok();

    let mut reply = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(raw);
    // The server answers with a protocol-limit ERR frame and closes.
    let mut saw_err = false;
    loop {
        reply.clear();
        match reader.read_line(&mut reply) {
            Ok(0) => break,
            Ok(_) => {
                if reply.starts_with("ERR ") && reply.contains("1 MiB") {
                    saw_err = true;
                }
            }
            Err(_) => break,
        }
    }
    assert!(
        saw_err,
        "oversized line did not produce the limit ERR frame"
    );
    drop(reader);

    // The server remains healthy for other clients.
    let mut client = VerdictClient::connect(handle.addr()).unwrap();
    assert_eq!(client.sql(QUERY).unwrap().header.rows, 10);
    client.quit().unwrap();

    assert_sessions_settle(&handle, 0);
    assert_drainable(handle);
}

#[test]
fn abrupt_disconnect_during_inflight_query_leaks_nothing() {
    let ctx = serving_context(35);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();

    for _ in 0..8 {
        // Fire a query and slam the socket shut before the answer arrives.
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_nodelay(true).unwrap();
        raw.write_all(format!("SQL BYPASS {QUERY}\n").as_bytes())
            .unwrap();
        // Drop without QUIT: the close races the in-flight execution.
        drop(raw);
    }

    // The server must still answer and must reap every aborted session.
    let mut client = VerdictClient::connect(handle.addr()).unwrap();
    assert_eq!(client.sql(QUERY).unwrap().header.rows, 10);
    client.quit().unwrap();

    assert_sessions_settle(&handle, 0);
    assert_eq!(wire_sessions_active(handle.addr()), 0);
    assert_drainable(handle);
}

#[test]
fn client_times_out_instead_of_blocking_on_a_wedged_server() {
    // A raw listener that accepts and then never answers stands in for a
    // wedged server: the client's read timeout must fire.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(2));
        drop(sock);
    });

    let mut client = VerdictClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let t0 = Instant::now();
    match client.ping() {
        Err(ClientError::TimedOut(_)) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "read timeout did not bound the wait"
    );
    hold.join().unwrap();
}

#[test]
fn client_reports_disconnected_on_a_dead_server() {
    let ctx = serving_context(36);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();
    assert_eq!(client.sql(QUERY).unwrap().header.rows, 10);

    // Kill the server out from under the live session.
    handle.stop();

    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match client.sql(QUERY) {
        Err(ClientError::Disconnected(_)) | Err(ClientError::Io(_)) => {}
        Ok(_) => panic!("query succeeded against a stopped server"),
        Err(other) => panic!("expected Disconnected, got {other}"),
    }
}

#[test]
fn graceful_drain_finishes_inflight_work_and_rejects_new_statements() {
    let ctx = serving_context(37);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();

    let mut worker = VerdictClient::connect(handle.addr()).unwrap();
    let mut shutter = VerdictClient::connect(handle.addr()).unwrap();

    // Kick off a statement, then request the drain from another session.
    // The in-flight statement must complete with a full answer.
    let answer = worker.sql(QUERY).unwrap();
    assert_eq!(answer.header.rows, 10);
    shutter.shutdown_server().unwrap();

    // Once draining, new statements get a typed SHUTDOWN refusal (or the
    // connection is already gone, depending on how far the drain got).
    match worker.sql(QUERY) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("SHUTDOWN"), "untyped drain refusal: {msg}")
        }
        Err(ClientError::Disconnected(_)) => {}
        // The write itself can race the socket teardown (EPIPE/ECONNRESET);
        // any of these means the statement was not admitted.
        Err(ClientError::Io(_)) => {}
        Ok(_) => panic!("statement admitted during drain"),
        Err(other) => panic!("unexpected drain-time error: {other}"),
    }

    assert!(
        handle.drain(Duration::from_secs(10)),
        "SHUTDOWN did not finish draining"
    );

    // New connections are refused once the listener is down.
    assert!(
        TcpStream::connect_timeout(&"127.0.0.1:1".parse().unwrap(), Duration::from_millis(1))
            .is_err()
    );
}

#[test]
fn admission_refusal_is_typed_and_ping_still_answers() {
    let ctx = serving_context(38);
    // One worker and a tiny queue: it is easy to fill.
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .with_workers(1)
        .with_queue_capacity(2)
        .spawn()
        .unwrap();

    // Saturate the queue with heavy cache-bypassed statements from several
    // sessions, then observe a typed BUSY refusal on a fresh session while
    // PING (answered on the I/O shard) still succeeds.
    let mut backlog: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for _ in 0..8 {
        let addr = handle.addr();
        backlog.push(std::thread::spawn(move || {
            if let Ok(mut c) = VerdictClient::connect(addr) {
                for _ in 0..16 {
                    if c.sql(&format!("BYPASS {QUERY}")).is_err() {
                        break;
                    }
                }
                let _ = c.quit();
            }
        }));
    }

    let mut probe = VerdictClient::connect(handle.addr()).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut saw_busy = false;
    for _ in 0..200 {
        probe.ping().expect("PING must answer even at capacity");
        match probe.sql(&format!("BYPASS {QUERY}")) {
            Ok(_) => {}
            Err(ClientError::Busy(_)) => {
                saw_busy = true;
                break;
            }
            Err(other) => panic!("expected Busy, got {other}"),
        }
    }
    let refused = handle.admission_stats().refused;
    assert!(
        saw_busy || refused > 0,
        "queue never refused: BUSY path untested (refused={refused})"
    );
    let _ = probe.quit();
    for h in backlog {
        h.join().unwrap();
    }

    assert_sessions_settle(&handle, 0);
    assert_drainable(handle);
}

#[test]
fn byte_at_a_time_request_still_parses() {
    // The inverse of slow-loris: a complete request delivered one byte at a
    // time must produce exactly one well-formed frame.
    let ctx = serving_context(39);
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();

    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    for b in format!("SQL {QUERY}\n").as_bytes() {
        raw.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("OK "),
        "bad status for trickled request: {line}"
    );
    let mut body = String::new();
    loop {
        body.clear();
        assert!(reader.read_line(&mut body).unwrap() > 0);
        if body.trim_end() == "." {
            break;
        }
    }
    raw.write_all(b"QUIT\n").unwrap();
    // Read until EOF so the close is graceful on both sides.
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);

    assert_sessions_settle(&handle, 0);
    assert_drainable(handle);
}
