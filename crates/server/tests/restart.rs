//! Restart durability over the real wire: boot the `verdict-server` binary
//! with `--data-dir`, let it build scrambles, query it over TCP, **SIGKILL**
//! it, boot a fresh process on the same directory, and require
//!
//! * the replacement reports *restored* scrambles (cold-start serving, not
//!   a rebuild from base tables), and
//! * every recorded query answers **bit-identically** to its pre-kill
//!   answer.
//!
//! This is the end-to-end proof behind `docs/storage.md`: the WAL's commit
//! discipline plus the paged block format make a hard kill indistinguishable
//! from a graceful restart as far as answers are concerned.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use verdict_engine::Value;
use verdict_server::VerdictClient;

const ADDR: &str = "127.0.0.1:16711";

/// The query battery recorded before the kill and replayed after it.
const QUERIES: &[&str] = &[
    "SELECT count(*) AS n FROM order_products",
    "SELECT sum(price * quantity) AS rev, avg(price) AS ap FROM order_products",
    "SELECT count(*) AS n FROM orders WHERE order_dow <= 2",
    "SELECT reordered, count(*) AS n FROM order_products GROUP BY reordered ORDER BY reordered",
];

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(data_dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_verdict-server"))
        .args([
            "--addr",
            ADDR,
            "--dataset",
            "instacart",
            "--scale",
            "0.02",
            "--seed",
            "7",
            "--data-dir",
            data_dir.to_str().expect("utf8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn verdict-server")
}

fn wait_until_serving(child: &mut Child, budget: Duration) {
    let deadline = Instant::now() + budget;
    loop {
        if let Ok(mut c) = VerdictClient::connect(ADDR) {
            if c.ping().is_ok() {
                let _ = c.quit();
                return;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            let mut err = String::new();
            if let Some(mut s) = child.stderr.take() {
                let _ = s.read_to_string(&mut err);
            }
            panic!("server exited before serving: {status}\n{err}");
        }
        assert!(Instant::now() < deadline, "server never came up on {ADDR}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Drains a killed child's captured stdout (kill first — otherwise the read
/// blocks until the process exits on its own).
fn stdout_of(child: &mut Child) -> String {
    let mut out = String::new();
    if let Some(mut s) = child.stdout.take() {
        let _ = s.read_to_string(&mut out);
    }
    out
}

/// Exact variant-level equality: floats compare by bit pattern.  Both sides
/// travelled the same wire encoding, so any drift here is a real answer
/// difference, not formatting.
fn values_bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

#[test]
fn sigkill_then_restart_serves_bit_identical_answers_over_tcp() {
    let dir = tempdir("tcp");

    // First life: boot on an empty data dir — the startup scrambles are
    // built fresh and persisted through the WAL as a side effect.
    let mut first = spawn_server(&dir);
    wait_until_serving(&mut first, Duration::from_secs(60));

    let mut client = VerdictClient::connect(ADDR).expect("connect");
    let before: Vec<_> = QUERIES
        .iter()
        .map(|q| client.query(q).expect("query before kill"))
        .collect();
    drop(client);

    // Hard kill: no drain, no flush beyond what the WAL already forced.
    first.kill().expect("kill server");
    first.wait().expect("reap server");
    let first_out = stdout_of(&mut first);
    assert!(
        first_out.contains("scramble verdict_sample_"),
        "first life must have built scrambles:\n{first_out}"
    );

    // Second life: same directory.  Scrambles must come back from disk.
    let mut second = spawn_server(&dir);
    wait_until_serving(&mut second, Duration::from_secs(60));

    let mut client = VerdictClient::connect(ADDR).expect("reconnect");
    for (q, expected) in QUERIES.iter().zip(&before) {
        let after = client.query(q).expect("query after restart");
        assert_eq!(expected.columns, after.columns, "{q}: columns differ");
        assert_eq!(expected.rows.len(), after.rows.len(), "{q}: row counts");
        for (r, (er, ar)) in expected.rows.iter().zip(&after.rows).enumerate() {
            for (c, (ev, av)) in er.iter().zip(ar).enumerate() {
                assert!(
                    values_bit_identical(ev, av),
                    "{q} ({r},{c}): {ev:?} vs {av:?}"
                );
            }
        }
    }

    // The replacement must be serving *restored* scrambles (cold start),
    // not freshly rebuilt ones, and its store counters must be visible.
    let stats = client.stats().expect("stats");
    let pages_read: u64 = stats
        .extra("store_pages_read")
        .expect("store counters in SHOW STATS")
        .parse()
        .expect("numeric counter");
    assert!(pages_read > 0, "restart must have read store pages");
    drop(client);

    second.kill().expect("kill second server");
    second.wait().expect("reap second server");
    let second_out = stdout_of(&mut second);
    assert!(
        second_out.contains("restored scramble verdict_sample_"),
        "second life must restore scrambles from the store:\n{second_out}"
    );
    assert!(
        !second_out.contains("\nscramble verdict_sample_"),
        "second life must not rebuild scrambles from base tables:\n{second_out}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
