//! Soak/chaos test: run the release `verdict-server` binary, drive it with
//! `verdict-loadgen` at 1k+ concurrent sessions and a 10% chaos mix, and
//! assert the things a soak run exists to catch — no panics, bounded
//! resident memory, and a clean graceful-drain exit.
//!
//! The test is expensive (two subprocesses, a thousand threads in the load
//! generator), so it only runs when `VERDICT_SOAK=1` is set; CI gives it a
//! dedicated short-budget job.  Locally:
//!
//! ```text
//! VERDICT_SOAK=1 cargo test --release -p verdict-server --test soak
//! ```

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use verdict_server::VerdictClient;

/// Sessions the load generator holds open concurrently.
const SESSIONS: usize = 1024;
/// Chaos probability per loadgen iteration (disconnects + 1 ms deadlines).
const CHAOS: &str = "0.10";
/// Wall-clock budget per measured point.
const DURATION_SECS: &str = "5";
/// RSS ceiling for the server under load.  The dataset itself (instacart at
/// the scale below) plus 1k connection buffers sits far under this; the
/// bound exists to catch unbounded-buffering regressions, not to be tight.
const MAX_RSS_KB: u64 = 2 * 1024 * 1024; // 2 GiB

fn soak_enabled() -> bool {
    std::env::var("VERDICT_SOAK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Resident set size of a live process in KiB, from `/proc/<pid>/status`
/// (`None` off linux or if the process is gone).
fn rss_kb(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn wait_until_serving(addr: &str, child: &mut Child, budget: Duration) {
    let deadline = Instant::now() + budget;
    loop {
        if let Ok(mut c) = VerdictClient::connect(addr) {
            if c.ping().is_ok() {
                let _ = c.quit();
                return;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("server exited before serving: {status}");
        }
        assert!(Instant::now() < deadline, "server never came up on {addr}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn soak_chaos_run_stays_bounded_and_drains_cleanly() {
    if !soak_enabled() {
        eprintln!("soak: skipped (set VERDICT_SOAK=1 to run)");
        return;
    }

    let addr = "127.0.0.1:16699";
    let mut server = Command::new(env!("CARGO_BIN_EXE_verdict-server"))
        .args(["--addr", addr, "--dataset", "instacart", "--scale", "0.02"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn verdict-server");
    wait_until_serving(addr, &mut server, Duration::from_secs(60));
    let server_pid = server.id();
    let baseline_rss = rss_kb(server_pid);

    // Sample the server's RSS while the load runs; keep the peak.
    let sampler_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler_flag = std::sync::Arc::clone(&sampler_stop);
    let sampler = std::thread::spawn(move || {
        let mut peak = 0u64;
        while !sampler_flag.load(std::sync::atomic::Ordering::Relaxed) {
            if let Some(rss) = rss_kb(server_pid) {
                peak = peak.max(rss);
            }
            std::thread::sleep(Duration::from_millis(200));
        }
        peak
    });

    let loadgen = Command::new(env!("CARGO_BIN_EXE_verdict-loadgen"))
        .args([
            "--addr",
            addr,
            "--sessions",
            &SESSIONS.to_string(),
            "--duration-secs",
            DURATION_SECS,
            "--chaos",
            CHAOS,
            "--shutdown",
        ])
        .output()
        .expect("run verdict-loadgen");
    let loadgen_out = String::from_utf8_lossy(&loadgen.stdout).to_string();
    let loadgen_err = String::from_utf8_lossy(&loadgen.stderr).to_string();
    eprintln!("loadgen stdout:\n{loadgen_out}");
    assert!(loadgen.status.success(), "loadgen failed: {loadgen_err}");
    assert!(
        !loadgen_out.contains("panic") && !loadgen_err.contains("panic"),
        "loadgen observed a panic"
    );

    // `--shutdown` asked the server to drain; it must exit zero by itself.
    let exit_deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Ok(Some(status)) = server.try_wait() {
            break status;
        }
        assert!(
            Instant::now() < exit_deadline,
            "server did not exit after graceful drain"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let peak_rss = sampler.join().unwrap();

    let mut server_out = String::new();
    let mut server_err = String::new();
    if let Some(mut s) = server.stdout.take() {
        let _ = s.read_to_string(&mut server_out);
    }
    if let Some(mut s) = server.stderr.take() {
        let _ = s.read_to_string(&mut server_err);
    }
    eprintln!(
        "soak: server exit={status}, baseline_rss={baseline_rss:?} KiB, peak_rss={peak_rss} KiB"
    );

    assert!(status.success(), "server exited nonzero: {server_err}");
    assert!(
        server_out.contains("drained"),
        "server did not report a graceful drain:\n{server_out}"
    );
    assert!(
        !server_out.contains("panic") && !server_err.contains("panic"),
        "server panicked under soak:\n{server_err}"
    );
    if peak_rss > 0 {
        assert!(
            peak_rss < MAX_RSS_KB,
            "server RSS grew unbounded under chaos load: {peak_rss} KiB"
        );
    }
}
