//! Offline stand-in for the subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) API used by
//! VerdictDB-rs.  Consumers depend on it under the name `parking_lot`
//! (`parking_lot = { package = "verdict-lock", path = … }`), so the
//! `parking_lot::RwLock` / `parking_lot::Mutex` call sites compile unchanged.
//!
//! Implemented over `std::sync` primitives.  The one semantic difference from
//! upstream parking_lot — lock poisoning — is papered over by recovering the
//! inner guard on poison: a panic while holding the lock does not poison
//! subsequent accesses, which matches parking_lot behaviour.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with the `parking_lot` calling convention
/// (no `Result` on acquisition).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Mutex with the `parking_lot` calling convention.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_guards_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn poisoned_locks_recover() {
        let lock = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 5);
    }
}
