//! Readiness polling for the multiplexed server, with no dependencies
//! beyond `std`.
//!
//! The build environment is fully offline, so the usual event-loop crates
//! (`mio`, `polling`, `libc`) are unavailable.  On unix this shim declares
//! `poll(2)` directly — `std` already links the C library, so the extern
//! declaration adds no dependency — and exposes the tiny slice of the API
//! the server's sharded event loop needs: level-triggered readable/writable
//! readiness over a set of file descriptors, with a timeout.
//!
//! On non-unix targets a degraded fallback sleeps briefly and reports every
//! registered interest as ready.  Spurious readiness is harmless for the
//! server (all sockets are nonblocking and every handler tolerates
//! `WouldBlock`); it merely turns the event loop into a slow busy-wait, which
//! keeps the crate compiling and the tests meaningful on every platform even
//! though production serving targets unix.

#![warn(missing_docs)]

use std::io;
use std::net::{TcpListener, TcpStream};

/// Interest/readiness flag: the descriptor is readable (or a peer hangup is
/// pending, which reads report as EOF).
pub const POLLIN: i16 = 0x001;
/// Interest/readiness flag: the descriptor is writable.
pub const POLLOUT: i16 = 0x004;
/// Result-only flag: error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Result-only flag: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Result-only flag: the descriptor is invalid (e.g. already closed).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set, layout-compatible with C's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor (negative entries are ignored by `poll(2)`).
    pub fd: i32,
    /// Requested interests (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Readiness reported by the last [`poll`] call.
    pub revents: i16,
}

impl PollFd {
    /// A poll entry for `fd` with the given interest set.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when the last poll reported the descriptor readable (or at EOF).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP) != 0
    }

    /// True when the last poll reported the descriptor writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// True when the last poll reported an error, hangup, or invalid fd —
    /// the connection is gone (or going) and should be torn down.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// True when the peer hung up (full close or reset).
    pub fn hangup(&self) -> bool {
        self.revents & POLLHUP != 0
    }
}

/// The raw descriptor of a TCP stream as an `i32` poll handle.
///
/// On non-unix targets (no `RawFd`) this returns `-1`; the fallback [`poll`]
/// ignores descriptors entirely, so the value is never dereferenced.
pub fn poll_handle(stream: &TcpStream) -> i32 {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

/// The raw descriptor of a TCP listener as an `i32` poll handle (`-1` on
/// non-unix targets, same contract as [`poll_handle`]).
pub fn listener_handle(listener: &TcpListener) -> i32 {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        listener.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        -1
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;

    extern "C" {
        // `std` links libc on every unix target, so declaring the symbol
        // adds no dependency.  nfds_t is c_ulong on the platforms we build.
        fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as std::os::raw::c_ulong,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the same timeout (a slight oversleep on
            // repeated signals is acceptable for a readiness loop).
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // Degraded fallback: nap briefly, then claim every registered
        // interest is ready.  Nonblocking handlers treat the spurious
        // readiness as a no-op (`WouldBlock`), so correctness holds; only
        // latency and CPU suffer.
        let nap = if timeout_ms < 0 {
            5
        } else {
            timeout_ms.clamp(0, 5)
        };
        std::thread::sleep(std::time::Duration::from_millis(nap as u64));
        let mut ready = 0usize;
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
            if fd.revents != 0 {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

/// Blocks until at least one entry is ready, the timeout elapses, or a
/// signal interrupts (retried internally).  `timeout_ms < 0` blocks
/// indefinitely; `0` polls without blocking.  Returns the number of entries
/// with nonzero `revents`.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    sys::poll_impl(fds, timeout_ms)
}

/// A connected loopback TCP pair used as a wake channel for event-loop
/// shards (portable stand-in for a self-pipe: both ends support
/// `set_nonblocking`, and the read end can sit in a poll set).
///
/// The accept side verifies the peer address, so a stray connection to the
/// ephemeral listener cannot be mistaken for our own wake channel.
pub fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    for _ in 0..8 {
        let tx = TcpStream::connect(addr)?;
        let local = tx.local_addr()?;
        let (rx, peer) = listener.accept()?;
        if peer == local {
            tx.set_nodelay(true)?;
            rx.set_nonblocking(true)?;
            return Ok((rx, tx));
        }
        // A foreign connection raced us onto the ephemeral port; drop it and
        // retry the handshake.
    }
    Err(io::Error::other("could not establish a loopback wake pair"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn wake_pair_is_pollable() {
        let (mut rx, mut tx) = wake_pair().unwrap();
        let h = poll_handle(&rx);

        // Nothing pending: a zero-timeout poll reports no readiness (on the
        // unix implementation; the fallback reports spurious readiness,
        // which the contract allows).
        #[cfg(unix)]
        {
            let mut fds = [PollFd::new(h, POLLIN)];
            assert_eq!(poll(&mut fds, 0).unwrap(), 0);
            assert!(!fds[0].readable());
        }

        tx.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(h, POLLIN)];
        assert!(poll(&mut fds, 1000).unwrap() >= 1);
        assert!(fds[0].readable());

        // Drain until WouldBlock: the read end is nonblocking.
        let mut buf = [0u8; 16];
        loop {
            match rx.read(&mut buf) {
                Ok(0) => panic!("unexpected EOF"),
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("{e}"),
            }
        }
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (rx, tx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(poll_handle(&tx), POLLOUT)];
        assert!(poll(&mut fds, 1000).unwrap() >= 1);
        assert!(fds[0].writable());
        drop(rx);
    }

    #[test]
    fn hangup_is_reported() {
        let (rx, tx) = wake_pair().unwrap();
        drop(tx);
        let mut fds = [PollFd::new(poll_handle(&rx), POLLIN)];
        assert!(poll(&mut fds, 1000).unwrap() >= 1);
        // A closed peer surfaces as readable (EOF) and/or hangup.
        assert!(fds[0].readable() || fds[0].hangup());
    }
}
