//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! API that VerdictDB-rs uses.
//!
//! The build environment has no network access, so third-party crates cannot
//! be fetched.  Consumers depend on this crate under the name `rand`
//! (`rand = { package = "verdict-rand", path = … }`), which keeps every
//! `use rand::…` in the codebase working unchanged.  Only the surface the
//! workspace actually exercises is provided: [`rngs::StdRng`], the [`Rng`] /
//! [`SeedableRng`] traits, and [`distributions::Uniform`].
//!
//! The generator is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64
//! — a different stream than upstream `rand`'s ChaCha-based `StdRng`, but the
//! workspace only relies on determinism-given-a-seed and statistical
//! uniformity, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Marker for types that can be sampled "uniformly at random" without bounds
/// (the shim equivalent of `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled from (the shim equivalent of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias worth caring about
/// for data generation (Lemire's multiply-shift reduction).
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over its "standard" domain;
    /// `f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic seeding (the only constructor surface the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (wall clock + ASLR noise);
    /// used only when no reproducibility is requested.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack_noise = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_noise.rotate_left(32))
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator — the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::{RngCore, SampleRange};

    /// A distribution that can be sampled with an RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        pub fn new(low: T, high: T) -> Uniform<T> {
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (self.low..self.high).sample_single(rng)
        }
    }

    impl Distribution<i64> for Uniform<i64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            (self.low..self.high).sample_single(rng)
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            (self.low..self.high).sample_single(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(1..=5i64);
            assert!((1..=5).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(0..7i64);
            assert!((0..7).contains(&v));
            let u = rng.gen_range(0..10usize);
            assert!(u < 10);
            let f = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }
}
