//! Abstract syntax tree for the SQL subset used by VerdictDB-rs.
//!
//! The AST covers the analytical query surface of Table 1 in the paper:
//! aggregates (`count`, `count distinct`, `sum`, `avg`, `min`, `max`, `var`,
//! `stddev`, quantiles), base and derived table sources joined via equi-joins,
//! selection predicates (comparisons, comparison subqueries, `IN`, `LIKE`,
//! `BETWEEN`, boolean connectives), `GROUP BY` / `HAVING` / `ORDER BY` /
//! `LIMIT`, and the window functions the AQP rewriter emits
//! (`count(*) over (partition by …)`, `sum(...) over (...)`).
//!
//! It also covers the DDL/DML VerdictDB needs for sample preparation:
//! `CREATE TABLE … AS SELECT`, `DROP TABLE`, and `INSERT INTO … SELECT`.
//!
//! Finally it covers VerdictDB's own *control statements* (§2.1: "applications
//! interact with VerdictDB exactly as they would with any SQL database"):
//! scramble DDL (`CREATE SCRAMBLE`, `DROP SCRAMBLE[S]`, `SHOW SCRAMBLES`,
//! `REFRESH SCRAMBLE[S]`), the exact-mode escape (`BYPASS <stmt>`), session
//! options (`SET <option> = <value>`), introspection (`SHOW STATS`,
//! `SHOW PROFILE [LAST n]`, `SHOW METRICS`), observability
//! (`EXPLAIN [ANALYZE] <stmt>`), and `STREAM <query>`.  These are
//! interpreted by the middleware session layer and never reach the
//! underlying database.

use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Query(Box<Query>),
    /// `CREATE TABLE <name> AS <query>` — the only table-creation form the
    /// middleware needs (sample tables are always created from a select).
    CreateTableAs {
        name: ObjectName,
        query: Box<Query>,
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] <name>`.
    DropTable { name: ObjectName, if_exists: bool },
    /// `INSERT INTO <table> <query>` — used for incremental sample maintenance
    /// (Appendix D: appending a freshly-sampled batch into an existing sample).
    InsertIntoSelect {
        table: ObjectName,
        query: Box<Query>,
    },
    /// `CREATE SCRAMBLE <name> FROM <table> [METHOD uniform|stratified|hashed]
    /// [RATIO <r>] [ON <col>, …]` — builds one named sample (scramble) table.
    CreateScramble {
        /// Name of the scramble table to create.
        name: ObjectName,
        /// The base table the scramble is drawn from.
        table: ObjectName,
        /// Sampling method; `None` lets the middleware default to uniform.
        method: Option<ScrambleMethod>,
        /// Sampling ratio τ; `None` uses the configured default.
        ratio: Option<f64>,
        /// Column set for stratified/hashed methods (empty for uniform).
        on: Vec<String>,
    },
    /// `CREATE SCRAMBLES FROM <table>` — applies the default sampling policy
    /// (Appendix F) and builds the recommended scramble set for the table.
    CreateScrambles {
        /// The base table to build recommended scrambles for.
        table: ObjectName,
    },
    /// `DROP SCRAMBLE [IF EXISTS] <name>` — drops one scramble by name.
    DropScramble {
        /// Name of the scramble table to drop.
        name: ObjectName,
        /// Succeed silently when no such scramble exists.
        if_exists: bool,
    },
    /// `DROP SCRAMBLES [IF EXISTS] <table>` — drops every scramble built for
    /// a base table.
    DropScrambles {
        /// The base table whose scrambles are dropped.
        table: ObjectName,
        /// Suppress the error when the table has no scrambles.
        if_exists: bool,
    },
    /// `SHOW SCRAMBLES` — tabular listing of every registered scramble.
    ShowScrambles,
    /// `SHOW STATS` — tabular listing of middleware counters (answer cache,
    /// registered scrambles, …).
    ShowStats,
    /// `REFRESH SCRAMBLES <table> [FROM <batch>]` — with `FROM`, folds an
    /// appended batch into every scramble of the base table (Appendix D);
    /// without, rebuilds every scramble from the current base data.
    RefreshScrambles {
        /// The base table whose scrambles are refreshed.
        table: ObjectName,
        /// Batch table holding the newly-appended rows, if incremental.
        batch: Option<ObjectName>,
    },
    /// `BYPASS <statement>` — runs the inner statement exactly on the base
    /// tables, skipping approximate query processing entirely (§2.4).
    Bypass(Box<Statement>),
    /// `SET <option> = <value>` — session-scoped option assignment
    /// (`target_error`, `confidence`, `cache`, `bypass`, …).
    SetOption {
        /// Option name (stored lower-cased).
        name: String,
        /// Assigned value.
        value: SetValue,
    },
    /// `STREAM <query>` — requests a progressively-refined approximate
    /// answer.  The current implementation computes a single fresh
    /// (uncached) approximate answer — the final frame of the stream.
    Stream(Box<Query>),
    /// `EXPLAIN [ANALYZE] <statement>` — without `ANALYZE`, renders the
    /// sampling plan and rewritten SQL without executing; with `ANALYZE`,
    /// executes the inner statement and renders the recorded span tree with
    /// timings and cache/shed/backend/store attribution.
    Explain {
        /// `true` for `EXPLAIN ANALYZE` (execute and report the trace).
        analyze: bool,
        /// The statement being explained.
        statement: Box<Statement>,
    },
    /// `SHOW PROFILE [LAST <n>]` — renders the most recent per-query traces
    /// from the bounded trace ring (most recent first).
    ShowProfile {
        /// Number of traces to show; `None` shows the single latest trace.
        last: Option<u64>,
    },
    /// `SHOW METRICS` — Prometheus-style text exposition of the middleware's
    /// counters, gauges, and latency histograms.
    ShowMetrics,
}

/// Sampling methods nameable in `CREATE SCRAMBLE … METHOD <m>` (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrambleMethod {
    /// Independent Bernoulli sampling with probability τ.
    Uniform,
    /// Per-stratum minimum-size sampling over the `ON` column set.
    Stratified,
    /// Universe (hash) sampling over the `ON` column set.
    Hashed,
}

impl ScrambleMethod {
    /// Parses a method keyword (case-insensitive).
    pub fn from_keyword(word: &str) -> Option<ScrambleMethod> {
        if word.eq_ignore_ascii_case("uniform") {
            Some(ScrambleMethod::Uniform)
        } else if word.eq_ignore_ascii_case("stratified") {
            Some(ScrambleMethod::Stratified)
        } else if word.eq_ignore_ascii_case("hashed") {
            Some(ScrambleMethod::Hashed)
        } else {
            None
        }
    }
}

impl fmt::Display for ScrambleMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScrambleMethod::Uniform => write!(f, "uniform"),
            ScrambleMethod::Stratified => write!(f, "stratified"),
            ScrambleMethod::Hashed => write!(f, "hashed"),
        }
    }
}

/// The right-hand side of a `SET <option> = <value>` statement: either a SQL
/// literal (`0.05`, `'x'`, `TRUE`) or a bare keyword (`on`, `off`,
/// `default`).
#[derive(Debug, Clone, PartialEq)]
pub enum SetValue {
    /// A literal value.
    Literal(Literal),
    /// A bare identifier such as `on` / `off` / `default`.
    Ident(String),
}

impl fmt::Display for SetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetValue::Literal(Literal::String(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            SetValue::Literal(Literal::Null) => write!(f, "NULL"),
            SetValue::Literal(Literal::Boolean(b)) => {
                write!(f, "{}", if *b { "TRUE" } else { "FALSE" })
            }
            SetValue::Literal(Literal::Integer(i)) => write!(f, "{i}"),
            SetValue::Literal(Literal::Float(v)) => write!(f, "{v}"),
            SetValue::Ident(w) => write!(f, "{w}"),
        }
    }
}

/// A possibly schema-qualified object (table) name, e.g. `verdict_meta.samples`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName(pub Vec<String>);

impl ObjectName {
    /// Builds a name from dot-separated parts.
    pub fn new<S: Into<String>>(parts: Vec<S>) -> Self {
        ObjectName(parts.into_iter().map(Into::into).collect())
    }

    /// Builds an unqualified, single-part name.
    pub fn bare<S: Into<String>>(name: S) -> Self {
        ObjectName(vec![name.into()])
    }

    /// The final (table) component of the name.
    pub fn base_name(&self) -> &str {
        self.0.last().map(|s| s.as_str()).unwrap_or("")
    }

    /// Lower-cased dotted rendering used as catalog lookup key.
    pub fn key(&self) -> String {
        self.0
            .iter()
            .map(|s| s.to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(".")
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

/// A full `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT` flag.
    pub distinct: bool,
    /// Select list.
    pub projection: Vec<SelectItem>,
    /// `FROM` clause; empty for table-less selects like `SELECT 1`.
    pub from: Vec<TableWithJoins>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

impl Query {
    /// A query with empty clauses, useful as a rewriting scaffold.
    pub fn empty() -> Self {
        Query {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare expression, e.g. `price * qty`.
    Expr(Expr),
    /// An aliased expression, e.g. `count(*) AS cnt`.
    ExprWithAlias { expr: Expr, alias: String },
    /// `*`.
    Wildcard,
    /// `t.*`.
    QualifiedWildcard(String),
}

impl SelectItem {
    /// The expression carried by this item, if any.
    pub fn expr(&self) -> Option<&Expr> {
        match self {
            SelectItem::Expr(e) | SelectItem::ExprWithAlias { expr: e, .. } => Some(e),
            _ => None,
        }
    }

    /// The output alias, if explicitly given.
    pub fn alias(&self) -> Option<&str> {
        match self {
            SelectItem::ExprWithAlias { alias, .. } => Some(alias.as_str()),
            _ => None,
        }
    }
}

/// A relation in the `FROM` clause together with its joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWithJoins {
    pub relation: TableFactor,
    pub joins: Vec<Join>,
}

/// A base table or a derived table (subquery).
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// A base table reference with an optional alias.
    Table {
        name: ObjectName,
        alias: Option<String>,
    },
    /// A derived table: `(SELECT …) AS alias`.
    Derived {
        subquery: Box<Query>,
        alias: Option<String>,
    },
}

impl TableFactor {
    /// The alias if present, otherwise the base table name (if a base table).
    pub fn binding_name(&self) -> Option<String> {
        match self {
            TableFactor::Table { name, alias } => Some(
                alias
                    .clone()
                    .unwrap_or_else(|| name.base_name().to_string()),
            ),
            TableFactor::Derived { alias, .. } => alias.clone(),
        }
    }
}

/// A join clause attached to a preceding relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub relation: TableFactor,
    pub join_type: JoinType,
    /// `ON` condition; `None` for a cross join.
    pub constraint: Option<Expr>,
}

/// The supported join types. VerdictDB only approximates equi inner joins;
/// the others are parsed so unsupported queries can be passed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
    Right,
    Cross,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinType::Inner => write!(f, "INNER JOIN"),
            JoinType::Left => write!(f, "LEFT JOIN"),
            JoinType::Right => write!(f, "RIGHT JOIN"),
            JoinType::Cross => write!(f, "CROSS JOIN"),
        }
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub asc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    /// String concatenation (`||`).
    Concat,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Minus,
    Plus,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Boolean(bool),
    Integer(i64),
    Float(f64),
    String(String),
}

/// Window specification for window (analytic) functions.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderByItem>,
}

/// Scalar / aggregate / window function call.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionCall {
    /// Function name, stored lower-cased.
    pub name: String,
    /// Arguments; `count(*)` is represented by a single [`Expr::Wildcard`] argument.
    pub args: Vec<Expr>,
    /// `DISTINCT` flag (only meaningful for aggregates).
    pub distinct: bool,
    /// `OVER (…)` clause for window functions.
    pub over: Option<WindowSpec>,
}

/// SQL scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified with a table alias.
    Column { table: Option<String>, name: String },
    /// Literal value.
    Literal(Literal),
    /// `*` (only valid inside `count(*)` and select lists).
    Wildcard,
    /// Binary operation.
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Unary operation.
    UnaryOp { op: UnaryOp, expr: Box<Expr> },
    /// Function call (scalar, aggregate, or window).
    Function(FunctionCall),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        operand: Option<Box<Expr>>,
        when_then: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`. Parsed but not approximated by VerdictDB.
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<Query>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// A scalar subquery, e.g. `price > (SELECT avg(price) FROM t)`.
    ScalarSubquery(Box<Query>),
    /// `EXISTS (SELECT …)`. Parsed so unsupported queries can be detected and passed through.
    Exists { subquery: Box<Query>, negated: bool },
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<Expr>,
        data_type: CastType,
    },
    /// Parenthesised expression (kept so the printer can reproduce grouping faithfully).
    Nested(Box<Expr>),
}

/// Target types for `CAST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastType {
    Integer,
    Double,
    Varchar,
    Boolean,
}

impl fmt::Display for CastType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CastType::Integer => write!(f, "BIGINT"),
            CastType::Double => write!(f, "DOUBLE"),
            CastType::Varchar => write!(f, "VARCHAR"),
            CastType::Boolean => write!(f, "BOOLEAN"),
        }
    }
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col<S: Into<String>>(name: S) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a table-qualified column reference.
    pub fn qcol<T: Into<String>, S: Into<String>>(table: T, name: S) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    /// Convenience constructor for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    /// Convenience constructor for a string literal.
    pub fn string<S: Into<String>>(v: S) -> Expr {
        Expr::Literal(Literal::String(v.into()))
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `left AND right`, treating `None` as absent.
    pub fn and_opt(left: Option<Expr>, right: Option<Expr>) -> Option<Expr> {
        match (left, right) {
            (Some(l), Some(r)) => Some(Expr::binary(l, BinaryOp::And, r)),
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    /// Convenience constructor for a non-distinct function call without a window.
    pub fn func<S: Into<String>>(name: S, args: Vec<Expr>) -> Expr {
        Expr::Function(FunctionCall {
            name: name.into().to_ascii_lowercase(),
            args,
            distinct: false,
            over: None,
        })
    }

    /// Returns the function call if this expression is a call to an aggregate function.
    pub fn as_aggregate(&self) -> Option<&FunctionCall> {
        match self {
            Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => Some(f),
            _ => None,
        }
    }

    /// True when the expression tree contains an aggregate function call
    /// (outside of a window specification).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        crate::visitor::walk_expr(self, &mut |e| {
            if e.as_aggregate().is_some() {
                found = true;
            }
        });
        found
    }
}

/// The aggregate functions understood by the engine and the AQP rewriter.
pub const AGGREGATE_FUNCTIONS: &[&str] = &[
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "stddev",
    "stddev_samp",
    "variance",
    "var_samp",
    "median",
    "quantile",
    "percentile",
    "approx_count_distinct",
    "ndv",
    "approx_median",
];

/// True when `name` (already lower-cased or not) is an aggregate function.
pub fn is_aggregate_function(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    AGGREGATE_FUNCTIONS.iter().any(|f| *f == lower)
}

/// True for "extreme statistics" (min/max) which VerdictDB never approximates (§2.2).
pub fn is_extreme_aggregate(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "min" || lower == "max"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_key_is_lowercased() {
        let n = ObjectName::new(vec!["Verdict_Meta", "Samples"]);
        assert_eq!(n.key(), "verdict_meta.samples");
        assert_eq!(n.base_name(), "Samples");
    }

    #[test]
    fn aggregate_detection() {
        assert!(is_aggregate_function("COUNT"));
        assert!(is_aggregate_function("stddev"));
        assert!(!is_aggregate_function("floor"));
        assert!(is_extreme_aggregate("MAX"));
        assert!(!is_extreme_aggregate("sum"));
    }

    #[test]
    fn contains_aggregate_walks_nested_expressions() {
        let e = Expr::binary(
            Expr::func("sum", vec![Expr::col("x")]),
            BinaryOp::Divide,
            Expr::func("count", vec![Expr::Wildcard]),
        );
        assert!(e.contains_aggregate());
        let plain = Expr::binary(Expr::col("x"), BinaryOp::Plus, Expr::int(1));
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn and_opt_combines_predicates() {
        let a = Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::int(1));
        let b = Expr::binary(Expr::col("b"), BinaryOp::Lt, Expr::int(2));
        let combined = Expr::and_opt(Some(a.clone()), Some(b)).unwrap();
        assert!(matches!(
            combined,
            Expr::BinaryOp {
                op: BinaryOp::And,
                ..
            }
        ));
        assert_eq!(Expr::and_opt(Some(a.clone()), None), Some(a));
        assert_eq!(Expr::and_opt(None, None), None);
    }
}
