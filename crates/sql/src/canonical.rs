//! Canonical SQL form used as the approximate-answer cache key.
//!
//! Two query texts that differ only in whitespace, keyword case, identifier
//! case, literal spelling (`1.50` vs `1.5`, `"x"` vs `'x'`), or redundant
//! formatting should hit the same cache entry.  [`canonical_sql`] achieves
//! this by parsing the text and re-printing the AST with the generic dialect
//! after lower-casing every identifier: the printer already normalises
//! whitespace, keyword case, and literal rendering, so the printed form is a
//! stable key.
//!
//! Canonicalisation is purely syntactic — it never changes query semantics
//! for the case-insensitive catalog this workspace uses (table and column
//! lookups are `to_ascii_lowercase`d throughout, see
//! `verdict_engine::Catalog`).  String *literal* contents are preserved
//! byte-for-byte; only identifiers are folded.

use crate::ast::*;
use crate::dialect::GenericDialect;
use crate::parser::{parse_statement, ParseError};
use crate::printer::print_statement;

/// Parses `sql` and returns its canonical text form, suitable as a cache key.
///
/// Returns the parse error unchanged when the text is not valid SQL — callers
/// typically skip caching in that case and let the execution path surface the
/// error.
pub fn canonical_sql(sql: &str) -> Result<String, ParseError> {
    let stmt = parse_statement(sql)?;
    let canon = canonical_statement(&stmt);
    Ok(print_statement(&canon, &GenericDialect))
}

/// Returns a copy of the statement with every identifier folded to lower
/// case (object names, column references, table aliases, function names) —
/// except projection aliases, which name the output columns the caller sees
/// and therefore stay case-significant.
pub fn canonical_statement(stmt: &Statement) -> Statement {
    match stmt {
        Statement::Query(q) => Statement::Query(Box::new(canonical_query(q))),
        Statement::CreateTableAs {
            name,
            query,
            if_not_exists,
        } => Statement::CreateTableAs {
            name: canonical_object_name(name),
            query: Box::new(canonical_query(query)),
            if_not_exists: *if_not_exists,
        },
        Statement::DropTable { name, if_exists } => Statement::DropTable {
            name: canonical_object_name(name),
            if_exists: *if_exists,
        },
        Statement::InsertIntoSelect { table, query } => Statement::InsertIntoSelect {
            table: canonical_object_name(table),
            query: Box::new(canonical_query(query)),
        },
        Statement::CreateScramble {
            name,
            table,
            method,
            ratio,
            on,
        } => Statement::CreateScramble {
            name: canonical_object_name(name),
            table: canonical_object_name(table),
            method: *method,
            ratio: *ratio,
            on: on.iter().map(|c| lower(c)).collect(),
        },
        Statement::CreateScrambles { table } => Statement::CreateScrambles {
            table: canonical_object_name(table),
        },
        Statement::DropScramble { name, if_exists } => Statement::DropScramble {
            name: canonical_object_name(name),
            if_exists: *if_exists,
        },
        Statement::DropScrambles { table, if_exists } => Statement::DropScrambles {
            table: canonical_object_name(table),
            if_exists: *if_exists,
        },
        Statement::ShowScrambles => Statement::ShowScrambles,
        Statement::ShowStats => Statement::ShowStats,
        Statement::RefreshScrambles { table, batch } => Statement::RefreshScrambles {
            table: canonical_object_name(table),
            batch: batch.as_ref().map(canonical_object_name),
        },
        Statement::Bypass(inner) => Statement::Bypass(Box::new(canonical_statement(inner))),
        Statement::SetOption { name, value } => Statement::SetOption {
            // The parser already lower-cases both; fold again so
            // hand-constructed ASTs canonicalise identically.
            name: lower(name),
            value: match value {
                SetValue::Ident(w) => SetValue::Ident(lower(w)),
                lit => lit.clone(),
            },
        },
        Statement::Stream(q) => Statement::Stream(Box::new(canonical_query(q))),
        Statement::Explain { analyze, statement } => Statement::Explain {
            analyze: *analyze,
            statement: Box::new(canonical_statement(statement)),
        },
        Statement::ShowProfile { last } => Statement::ShowProfile { last: *last },
        Statement::ShowMetrics => Statement::ShowMetrics,
    }
}

fn lower(s: &str) -> String {
    s.to_ascii_lowercase()
}

fn canonical_object_name(name: &ObjectName) -> ObjectName {
    ObjectName(name.0.iter().map(|p| lower(p)).collect())
}

fn canonical_query(query: &Query) -> Query {
    Query {
        distinct: query.distinct,
        projection: query.projection.iter().map(canonical_select_item).collect(),
        from: query
            .from
            .iter()
            .map(|twj| TableWithJoins {
                relation: canonical_table_factor(&twj.relation),
                joins: twj
                    .joins
                    .iter()
                    .map(|j| Join {
                        relation: canonical_table_factor(&j.relation),
                        join_type: j.join_type,
                        constraint: j.constraint.as_ref().map(canonical_expr),
                    })
                    .collect(),
            })
            .collect(),
        selection: query.selection.as_ref().map(canonical_expr),
        group_by: query.group_by.iter().map(canonical_expr).collect(),
        having: query.having.as_ref().map(canonical_expr),
        order_by: query.order_by.iter().map(canonical_order_by).collect(),
        limit: query.limit,
    }
}

fn canonical_select_item(item: &SelectItem) -> SelectItem {
    match item {
        // An unaliased bare column's original case becomes the output column
        // name (the middleware's answer assembly clones it verbatim), so like
        // an explicit alias it stays case-significant; only the table
        // qualifier folds.  Function names are parser-lowercased already and
        // other unaliased expressions get positional `col_N` names, so full
        // canonicalisation is safe for them.
        SelectItem::Expr(Expr::Column { table, name }) => SelectItem::Expr(Expr::Column {
            table: table.as_deref().map(lower),
            name: name.clone(),
        }),
        SelectItem::Expr(e) => SelectItem::Expr(canonical_expr(e)),
        // Projection aliases determine the *output column names* the caller
        // sees (the executor preserves their case), so folding them would
        // conflate queries with observably different result schemas — the
        // alias keeps its case and stays significant in the key.
        SelectItem::ExprWithAlias { expr, alias } => SelectItem::ExprWithAlias {
            expr: canonical_expr(expr),
            alias: alias.clone(),
        },
        SelectItem::Wildcard => SelectItem::Wildcard,
        // A qualified wildcard's qualifier is a table binding, not an output
        // name — safe to fold like any other identifier.
        SelectItem::QualifiedWildcard(t) => SelectItem::QualifiedWildcard(lower(t)),
    }
}

fn canonical_table_factor(tf: &TableFactor) -> TableFactor {
    match tf {
        TableFactor::Table { name, alias } => TableFactor::Table {
            name: canonical_object_name(name),
            alias: alias.as_deref().map(lower),
        },
        TableFactor::Derived { subquery, alias } => TableFactor::Derived {
            subquery: Box::new(canonical_query(subquery)),
            alias: alias.as_deref().map(lower),
        },
    }
}

fn canonical_order_by(item: &OrderByItem) -> OrderByItem {
    OrderByItem {
        expr: canonical_expr(&item.expr),
        asc: item.asc,
    }
}

fn canonical_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Column { table, name } => Expr::Column {
            table: table.as_deref().map(lower),
            name: lower(name),
        },
        Expr::Literal(l) => Expr::Literal(l.clone()),
        Expr::Wildcard => Expr::Wildcard,
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(canonical_expr(left)),
            op: *op,
            right: Box::new(canonical_expr(right)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(canonical_expr(expr)),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: lower(&f.name),
            args: f.args.iter().map(canonical_expr).collect(),
            distinct: f.distinct,
            over: f.over.as_ref().map(|w| WindowSpec {
                partition_by: w.partition_by.iter().map(canonical_expr).collect(),
                order_by: w.order_by.iter().map(canonical_order_by).collect(),
            }),
        }),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(canonical_expr(o))),
            when_then: when_then
                .iter()
                .map(|(w, t)| (canonical_expr(w), canonical_expr(t)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(canonical_expr(e))),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(canonical_expr(expr)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(canonical_expr(expr)),
            list: list.iter().map(canonical_expr).collect(),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(canonical_expr(expr)),
            subquery: Box::new(canonical_query(subquery)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(canonical_expr(expr)),
            low: Box::new(canonical_expr(low)),
            high: Box::new(canonical_expr(high)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(canonical_expr(expr)),
            pattern: Box::new(canonical_expr(pattern)),
            negated: *negated,
        },
        Expr::ScalarSubquery(q) => Expr::ScalarSubquery(Box::new(canonical_query(q))),
        Expr::Exists { subquery, negated } => Expr::Exists {
            subquery: Box::new(canonical_query(subquery)),
            negated: *negated,
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(canonical_expr(expr)),
            data_type: *data_type,
        },
        Expr::Nested(e) => Expr::Nested(Box::new(canonical_expr(e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_and_keyword_case_fold_together() {
        let a = canonical_sql("select   COUNT(*) from Orders\n WHERE  price>10").unwrap();
        let b = canonical_sql("SELECT count(*) FROM orders WHERE price > 10").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identifier_case_folds_but_string_literals_do_not() {
        let a = canonical_sql("SELECT city FROM Orders WHERE city = 'NYC'").unwrap();
        let b = canonical_sql("SELECT city FROM orders WHERE City = 'NYC'").unwrap();
        assert_eq!(a, b);
        let c = canonical_sql("SELECT city FROM orders WHERE city = 'nyc'").unwrap();
        assert_ne!(a, c, "string literal contents must stay significant");
    }

    #[test]
    fn literal_spelling_normalises() {
        let a = canonical_sql("SELECT * FROM t WHERE x < 1.50").unwrap();
        let b = canonical_sql("SELECT * FROM t WHERE x < 1.5").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aliases_joins_and_subqueries_fold() {
        let a = canonical_sql(
            "SELECT O.city AS c, avg(price) FROM Orders O JOIN Items I ON O.id = I.oid \
             WHERE price > (SELECT AVG(Price) FROM Items) GROUP BY O.city",
        )
        .unwrap();
        let b = canonical_sql(
            "select o.city as c, AVG(price) from orders o join items i on o.id = i.oid \
             where price > (select avg(price) from items) group by o.city",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn projection_alias_case_stays_significant() {
        // `AS ap` vs `AS AP` produce observably different output column
        // names, so they must not share a cache key.
        let a = canonical_sql("SELECT avg(price) AS ap FROM orders").unwrap();
        let b = canonical_sql("SELECT avg(price) AS AP FROM orders").unwrap();
        assert_ne!(a, b);
        // Table aliases, by contrast, are invisible in the output schema.
        let c = canonical_sql("SELECT avg(price) AS ap FROM orders AS O").unwrap();
        let d = canonical_sql("SELECT avg(price) AS ap FROM orders AS o").unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn unaliased_bare_column_case_stays_significant() {
        // `SELECT Price` names its output column "Price"; `SELECT price`
        // names it "price" — different result schemas, different keys.
        let a = canonical_sql("SELECT Price FROM orders").unwrap();
        let b = canonical_sql("SELECT price FROM orders").unwrap();
        assert_ne!(a, b);
        // The same column in a WHERE clause is pure resolution — it folds.
        let c = canonical_sql("SELECT price FROM orders WHERE Price > 1").unwrap();
        let d = canonical_sql("SELECT price FROM orders WHERE price > 1").unwrap();
        assert_eq!(c, d);
        // Unaliased function calls are parser-lowercased, so they fold.
        let e = canonical_sql("SELECT AVG(Price) FROM orders").unwrap();
        let f = canonical_sql("SELECT avg(price) FROM orders").unwrap();
        assert_eq!(e, f);
    }

    #[test]
    fn different_queries_stay_different() {
        let a = canonical_sql("SELECT count(*) FROM orders WHERE price > 10").unwrap();
        let b = canonical_sql("SELECT count(*) FROM orders WHERE price > 11").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn canonical_form_is_a_fixed_point() {
        let once = canonical_sql("Select Sum(X)  From T Group By  y Order by y Desc").unwrap();
        let twice = canonical_sql(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn control_statements_fold_identifier_case() {
        let a = canonical_sql("create scramble S_Orders from Orders method STRATIFIED on City")
            .unwrap();
        let b = canonical_sql("CREATE SCRAMBLE s_orders FROM orders METHOD stratified ON city")
            .unwrap();
        assert_eq!(a, b);
        let a = canonical_sql("refresh scrambles Sales from Sales_Batch").unwrap();
        let b = canonical_sql("REFRESH SCRAMBLES sales FROM sales_batch").unwrap();
        assert_eq!(a, b);
        let a = canonical_sql("SET Target_Error = 0.050").unwrap();
        let b = canonical_sql("set target_error = 0.05").unwrap();
        assert_eq!(a, b);
        let a = canonical_sql("BYPASS select Count(*) from T").unwrap();
        let b = canonical_sql("bypass SELECT count(*) FROM t").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn control_statement_canonical_form_is_a_fixed_point() {
        for sql in [
            "create scramble S from T method HASHED ratio 0.250 on A, B",
            "create scrambles from T",
            "drop scramble if exists S",
            "drop scrambles T",
            "show scrambles",
            "show stats",
            "refresh scrambles T from B",
            "refresh scramble T",
            "bypass insert into S select * from B",
            "set cache = OFF",
            "stream select avg(X) from T",
            "explain select avg(X) from T",
            "explain analyze bypass select count(*) from T",
            "show profile",
            "show profile last 5",
            "show metrics",
            "set slow_query_ms = 250",
        ] {
            let once = canonical_sql(sql).unwrap();
            let twice = canonical_sql(&once).unwrap();
            assert_eq!(once, twice, "not a fixed point for {sql}");
        }
    }
}
