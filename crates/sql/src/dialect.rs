//! SQL dialects.
//!
//! The paper's "Syntax Changer" is the only VerdictDB module that must know
//! about engine-specific SQL quirks (quotation marks, function spellings,
//! restrictions such as Impala disallowing `rand()` in selection predicates).
//! This module captures those quirks behind the [`Dialect`] trait so adding a
//! new engine is a small, local change — mirroring the paper's observation
//! that each driver took only 55–360 lines of code.

/// Engine-specific SQL rendering rules.
pub trait Dialect: Send + Sync {
    /// Human-readable dialect name.
    fn name(&self) -> &'static str;

    /// The character used to quote identifiers that need quoting.
    fn identifier_quote(&self) -> char {
        '`'
    }

    /// The spelling of the uniform-random function returning a value in `[0, 1)`.
    fn random_function(&self) -> &'static str {
        "rand()"
    }

    /// The spelling of the 64-bit hash function used by hashed (universe)
    /// samples: must map `(expr, modulus)` to an integer in `[0, modulus)`.
    fn hash_function(&self, expr: &str, modulus: u64) -> String {
        format!("verdict_hash({expr}, {modulus})")
    }

    /// Whether `rand()` may appear inside a `WHERE` predicate directly.
    /// Impala rejects it; the rewriter then pushes the call into a derived
    /// table projection first.
    fn allows_rand_in_where(&self) -> bool {
        true
    }

    /// Spelling of integer floor division for `floor(x)`.
    fn floor_function(&self, expr: &str) -> String {
        format!("floor({expr})")
    }

    /// Spelling of the modulo operation.
    fn mod_function(&self, a: &str, b: &str) -> String {
        format!("({a} % {b})")
    }

    /// True if the identifier must be quoted in this dialect.
    fn requires_quoting(&self, ident: &str) -> bool {
        ident.is_empty()
            || !ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            || ident.chars().next().is_some_and(|c| c.is_ascii_digit())
    }

    /// Quote an identifier if the dialect requires it.
    fn quote_ident(&self, ident: &str) -> String {
        if self.requires_quoting(ident) {
            let q = self.identifier_quote();
            format!("{q}{ident}{q}")
        } else {
            ident.to_string()
        }
    }
}

/// A permissive generic dialect used by the in-memory engine and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenericDialect;

impl Dialect for GenericDialect {
    fn name(&self) -> &'static str {
        "generic"
    }
}

/// Apache Impala: double-quote-free backtick quoting, `rand()` not allowed in
/// `WHERE`, `fnv_hash` used for hashing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImpalaDialect;

impl Dialect for ImpalaDialect {
    fn name(&self) -> &'static str {
        "impala"
    }

    fn allows_rand_in_where(&self) -> bool {
        false
    }

    fn hash_function(&self, expr: &str, modulus: u64) -> String {
        format!("abs(fnv_hash({expr})) % {modulus}")
    }
}

/// Apache Spark SQL: backtick quoting, `rand()` allowed, `hash` built-in.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparkSqlDialect;

impl Dialect for SparkSqlDialect {
    fn name(&self) -> &'static str {
        "sparksql"
    }

    fn hash_function(&self, expr: &str, modulus: u64) -> String {
        format!("abs(hash({expr})) % {modulus}")
    }

    fn mod_function(&self, a: &str, b: &str) -> String {
        format!("pmod({a}, {b})")
    }
}

/// Amazon Redshift: double-quote identifier quoting, `random()` spelling,
/// `strtol(crc32(...), 16)` style hashing.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedshiftDialect;

impl Dialect for RedshiftDialect {
    fn name(&self) -> &'static str {
        "redshift"
    }

    fn identifier_quote(&self) -> char {
        '"'
    }

    fn random_function(&self) -> &'static str {
        "random()"
    }

    fn hash_function(&self, expr: &str, modulus: u64) -> String {
        format!("mod(strtol(crc32({expr}), 16), {modulus})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_rules() {
        let d = GenericDialect;
        assert_eq!(d.quote_ident("simple_name"), "simple_name");
        assert_eq!(d.quote_ident("weird col"), "`weird col`");
        assert_eq!(d.quote_ident("2starts_with_digit"), "`2starts_with_digit`");
        let r = RedshiftDialect;
        assert_eq!(r.quote_ident("weird col"), "\"weird col\"");
    }

    #[test]
    fn dialect_specific_functions() {
        assert_eq!(GenericDialect.random_function(), "rand()");
        assert_eq!(RedshiftDialect.random_function(), "random()");
        assert!(ImpalaDialect
            .hash_function("order_id", 100)
            .contains("fnv_hash"));
        assert!(SparkSqlDialect
            .hash_function("order_id", 100)
            .contains("hash"));
        assert!(!ImpalaDialect.allows_rand_in_where());
        assert!(SparkSqlDialect.allows_rand_in_where());
    }
}
