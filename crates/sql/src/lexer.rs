//! Hand-written SQL tokenizer.
//!
//! The lexer is deliberately permissive: keyword recognition is deferred to
//! the parser so that new keywords never break identifier lexing, and both
//! backtick and double-quote identifier quoting are accepted (Hive/Spark use
//! backticks, Redshift/Impala accept double quotes).

use crate::token::{SpannedToken, Token};
use std::fmt;

/// An error produced while tokenizing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input at which the error occurred.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a SQL string into a vector of spanned tokens terminated by [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        // doubled quote is an escaped quote
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        // backslash escapes (Hive/Spark style)
                        let esc = bytes[i + 1] as char;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        i += 2;
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::StringLit(s),
                    offset: start,
                });
            }
            '`' | '"' => {
                let quote = bytes[i];
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated quoted identifier".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == quote {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(SpannedToken {
                    token: Token::QuotedIdent(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit()) {
                    i += 1;
                }
                // fraction
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::Number(input[start..i].to_string()),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(SpannedToken {
                    token: Token::Word(input[start..i].to_string()),
                    offset: start,
                });
            }
            _ => {
                let start = i;
                let tok = match c {
                    ',' => {
                        i += 1;
                        Token::Comma
                    }
                    '(' => {
                        i += 1;
                        Token::LParen
                    }
                    ')' => {
                        i += 1;
                        Token::RParen
                    }
                    '.' => {
                        i += 1;
                        Token::Dot
                    }
                    '*' => {
                        i += 1;
                        Token::Star
                    }
                    '+' => {
                        i += 1;
                        Token::Plus
                    }
                    '-' => {
                        i += 1;
                        Token::Minus
                    }
                    '/' => {
                        i += 1;
                        Token::Slash
                    }
                    '%' => {
                        i += 1;
                        Token::Percent
                    }
                    ';' => {
                        i += 1;
                        Token::Semicolon
                    }
                    '=' => {
                        i += 1;
                        Token::Eq
                    }
                    '|' => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                            i += 2;
                            Token::Concat
                        } else {
                            return Err(LexError {
                                message: "unexpected character '|'".into(),
                                offset: start,
                            });
                        }
                    }
                    '!' => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                            i += 2;
                            Token::Neq
                        } else {
                            return Err(LexError {
                                message: "unexpected character '!'".into(),
                                offset: start,
                            });
                        }
                    }
                    '<' => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                            i += 2;
                            Token::LtEq
                        } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                            i += 2;
                            Token::Neq
                        } else {
                            i += 1;
                            Token::Lt
                        }
                    }
                    '>' => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                            i += 2;
                            Token::GtEq
                        } else {
                            i += 1;
                            Token::Gt
                        }
                    }
                    other => {
                        return Err(LexError {
                            message: format!("unexpected character {other:?}"),
                            offset: start,
                        })
                    }
                };
                tokens.push(SpannedToken {
                    token: tok,
                    offset: start,
                });
            }
        }
    }

    tokens.push(SpannedToken {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT a, b FROM t WHERE a >= 10.5");
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("a".into()),
                Token::Comma,
                Token::Word("b".into()),
                Token::Word("FROM".into()),
                Token::Word("t".into()),
                Token::Word("WHERE".into()),
                Token::Word("a".into()),
                Token::GtEq,
                Token::Number("10.5".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escaped_quotes() {
        let t = toks("SELECT 'it''s ok', 'a\\nb'");
        assert_eq!(t[1], Token::StringLit("it's ok".into()));
        assert_eq!(t[3], Token::StringLit("a\nb".into()));
    }

    #[test]
    fn lexes_quoted_identifiers_both_styles() {
        let t = toks("SELECT `weird col`, \"other col\" FROM t");
        assert_eq!(t[1], Token::QuotedIdent("weird col".into()));
        assert_eq!(t[3], Token::QuotedIdent("other col".into()));
    }

    #[test]
    fn skips_comments() {
        let t = toks("SELECT 1 -- trailing\n, 2 /* block */ , 3");
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Number("1".into()),
                Token::Comma,
                Token::Number("2".into()),
                Token::Comma,
                Token::Number("3".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        let t = toks("a <> b != c <= d >= e < f > g = h");
        assert!(t.contains(&Token::Neq));
        assert!(t.contains(&Token::LtEq));
        assert!(t.contains(&Token::GtEq));
    }

    #[test]
    fn reports_unterminated_string() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn lexes_scientific_notation() {
        let t = toks("SELECT 1e6, 2.5E-3");
        assert_eq!(t[1], Token::Number("1e6".into()));
        assert_eq!(t[3], Token::Number("2.5E-3".into()));
    }
}
