//! # verdict-sql
//!
//! SQL front-end for VerdictDB-rs: a hand-written lexer and recursive-descent
//! parser producing a typed abstract syntax tree (AST), plus a dialect-aware
//! SQL printer and AST visitors.
//!
//! VerdictDB is a *driver-level* middleware: every interaction with the
//! underlying database happens through SQL text.  The middleware therefore
//! needs to (1) parse incoming analytical queries into an AST, (2) rewrite
//! that AST into an approximate-query-processing form, and (3) render the
//! rewritten AST back into the SQL dialect understood by the target engine
//! (the paper's "Syntax Changer").  This crate provides all three pieces and
//! is shared by the engine (`verdict-engine`) and the middleware
//! (`verdict-core`).
//!
//! ## Example
//!
//! ```
//! use verdict_sql::{parse_statement, Statement, dialect::GenericDialect, print_statement};
//!
//! let stmt = parse_statement("SELECT city, count(*) AS cnt FROM orders GROUP BY city").unwrap();
//! assert!(matches!(stmt, Statement::Query(_)));
//! let sql = print_statement(&stmt, &GenericDialect);
//! assert!(sql.contains("GROUP BY"));
//! ```

pub mod ast;
pub mod canonical;
pub mod dialect;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visitor;

pub use ast::*;
pub use canonical::{canonical_sql, canonical_statement};
pub use dialect::{Dialect, GenericDialect, ImpalaDialect, RedshiftDialect, SparkSqlDialect};
pub use parser::{parse_expression, parse_statement, parse_statements, ParseError};
pub use printer::{print_expr, print_query, print_statement};

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use dialect::GenericDialect;

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
        let printed = print_statement(&stmt, &GenericDialect);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for {printed}: {e}"));
        let reprinted = print_statement(&reparsed, &GenericDialect);
        assert_eq!(printed, reprinted, "printer not stable for {sql}");
    }

    #[test]
    fn roundtrip_simple_queries() {
        roundtrip("SELECT 1");
        roundtrip("SELECT * FROM t");
        roundtrip("SELECT a, b AS c FROM t WHERE a > 10 AND b < 3.5");
        roundtrip("SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2 ORDER BY a DESC LIMIT 5");
        roundtrip("SELECT sum(x * 2) FROM t1 INNER JOIN t2 ON t1.id = t2.id");
        roundtrip("SELECT * FROM (SELECT a FROM t) AS sub WHERE a IN (1, 2, 3)");
        roundtrip("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t");
        roundtrip("SELECT count(*) OVER (PARTITION BY city) FROM t");
        roundtrip("CREATE TABLE s AS SELECT * FROM t WHERE rand() < 0.01");
        roundtrip("DROP TABLE IF EXISTS s");
        roundtrip("SELECT a FROM t WHERE b LIKE '%x%' AND c BETWEEN 1 AND 2");
        roundtrip("SELECT avg(price) FROM orders WHERE price > (SELECT avg(price) FROM orders)");
    }

    #[test]
    fn roundtrip_control_statements() {
        roundtrip("CREATE SCRAMBLE s_orders FROM orders");
        roundtrip("CREATE SCRAMBLE s FROM t METHOD uniform RATIO 0.01");
        roundtrip("CREATE SCRAMBLE s FROM t METHOD stratified RATIO 0.05 ON city, dow");
        roundtrip("CREATE SCRAMBLE s FROM t METHOD hashed ON order_id");
        roundtrip("CREATE SCRAMBLES FROM orders");
        roundtrip("DROP SCRAMBLE s");
        roundtrip("DROP SCRAMBLE IF EXISTS s");
        roundtrip("DROP SCRAMBLES orders");
        roundtrip("DROP SCRAMBLES IF EXISTS orders");
        roundtrip("SHOW SCRAMBLES");
        roundtrip("SHOW STATS");
        roundtrip("REFRESH SCRAMBLES sales");
        roundtrip("REFRESH SCRAMBLES sales FROM sales_batch");
        roundtrip("BYPASS SELECT count(*) AS n FROM t WHERE x > 1");
        roundtrip("BYPASS DROP TABLE IF EXISTS t");
        roundtrip("BYPASS INSERT INTO s SELECT * FROM b");
        roundtrip("SET target_error = 0.05");
        roundtrip("SET cache = off");
        roundtrip("SET label = 'x''y'");
        roundtrip("SET confidence = default");
        roundtrip("STREAM SELECT city, avg(price) AS ap FROM orders GROUP BY city");
    }
}
