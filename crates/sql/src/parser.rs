//! Recursive-descent SQL parser.
//!
//! The parser consumes the tokens produced by [`crate::lexer`] and builds the
//! AST defined in [`crate::ast`].  Operator precedence follows standard SQL:
//! `OR` < `AND` < `NOT` < comparison / `IN` / `LIKE` / `BETWEEN` / `IS` <
//! additive < multiplicative < unary < primary.

use crate::ast::*;
use crate::lexer::{tokenize, LexError};
use crate::token::{SpannedToken, Token};
use std::fmt;

/// An error produced while parsing SQL.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(ParseError {
            message: "empty statement".into(),
            offset: 0,
        }),
        _ => Err(ParseError {
            message: "expected a single statement".into(),
            offset: 0,
        }),
    }
}

/// Parses a semicolon-separated list of statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while parser.peek() == &Token::Semicolon {
            parser.advance();
        }
        if parser.peek() == &Token::Eof {
            break;
        }
        out.push(parser.parse_statement()?);
    }
    Ok(out)
}

/// Parses a standalone scalar expression (useful in tests and rewriters).
pub fn parse_expression(sql: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.peek() == &Token::Eof || self.peek() == &Token::Semicolon {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("unexpected trailing token {}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            self.error(format!("expected keyword {kw}, found {}", self.peek()))
        }
    }

    fn consume_token(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.consume_token(t) {
            Ok(())
        } else {
            self.error(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn parse_identifier(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Word(w) => Ok(w),
            Token::QuotedIdent(w) => Ok(w),
            other => Err(ParseError {
                message: format!("expected identifier, found {other}"),
                offset: self.offset(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek().is_keyword("select") || self.peek() == &Token::LParen {
            let q = self.parse_query()?;
            self.skip_statement_end()?;
            return Ok(Statement::Query(Box::new(q)));
        }
        if self.peek().is_keyword("create") {
            if self.peek_ahead(1).is_keyword("scramble")
                || self.peek_ahead(1).is_keyword("scrambles")
            {
                return self.parse_create_scramble();
            }
            return self.parse_create_table_as();
        }
        if self.peek().is_keyword("drop") {
            if self.peek_ahead(1).is_keyword("scramble")
                || self.peek_ahead(1).is_keyword("scrambles")
            {
                return self.parse_drop_scramble();
            }
            return self.parse_drop_table();
        }
        if self.peek().is_keyword("insert") {
            return self.parse_insert();
        }
        if self.peek().is_keyword("show") {
            return self.parse_show();
        }
        if self.peek().is_keyword("refresh") {
            return self.parse_refresh_scrambles();
        }
        if self.peek().is_keyword("bypass") {
            return self.parse_bypass();
        }
        if self.peek().is_keyword("set") {
            return self.parse_set_option();
        }
        if self.peek().is_keyword("stream") {
            self.advance();
            let q = self.parse_query()?;
            self.skip_statement_end()?;
            return Ok(Statement::Stream(Box::new(q)));
        }
        if self.peek().is_keyword("explain") {
            return self.parse_explain();
        }
        self.error(format!(
            "unsupported statement starting with {}",
            self.peek()
        ))
    }

    fn skip_statement_end(&mut self) -> Result<(), ParseError> {
        if self.peek() == &Token::Semicolon || self.peek() == &Token::Eof {
            while self.peek() == &Token::Semicolon {
                self.advance();
            }
            Ok(())
        } else {
            self.error(format!("unexpected token after statement: {}", self.peek()))
        }
    }

    fn parse_object_name(&mut self) -> Result<ObjectName, ParseError> {
        let mut parts = vec![self.parse_identifier()?];
        while self.consume_token(&Token::Dot) {
            parts.push(self.parse_identifier()?);
        }
        Ok(ObjectName(parts))
    }

    fn parse_create_table_as(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let mut if_not_exists = false;
        if self.peek().is_keyword("if") {
            self.advance();
            self.expect_keyword("not")?;
            self.expect_keyword("exists")?;
            if_not_exists = true;
        }
        let name = self.parse_object_name()?;
        self.expect_keyword("as")?;
        let query = self.parse_query()?;
        self.skip_statement_end()?;
        Ok(Statement::CreateTableAs {
            name,
            query: Box::new(query),
            if_not_exists,
        })
    }

    fn parse_drop_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("drop")?;
        self.expect_keyword("table")?;
        let mut if_exists = false;
        if self.peek().is_keyword("if") {
            self.advance();
            self.expect_keyword("exists")?;
            if_exists = true;
        }
        let name = self.parse_object_name()?;
        self.skip_statement_end()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.parse_object_name()?;
        // Only INSERT INTO ... SELECT is supported (sample maintenance).
        let query = self.parse_query()?;
        self.skip_statement_end()?;
        Ok(Statement::InsertIntoSelect {
            table,
            query: Box::new(query),
        })
    }

    // ------------------------------------------------------------------
    // VerdictDB control statements
    // ------------------------------------------------------------------

    /// `CREATE SCRAMBLE <name> FROM <table> [METHOD m] [RATIO r] [ON c, …]`
    /// and `CREATE SCRAMBLES FROM <table>` (recommended-policy set).  The
    /// optional clauses are accepted in any order; the printer emits them in
    /// the canonical METHOD → RATIO → ON order.
    fn parse_create_scramble(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("create")?;
        if self.consume_keyword("scrambles") {
            self.expect_keyword("from")?;
            let table = self.parse_object_name()?;
            self.skip_statement_end()?;
            return Ok(Statement::CreateScrambles { table });
        }
        self.expect_keyword("scramble")?;
        let name = self.parse_object_name()?;
        self.expect_keyword("from")?;
        let table = self.parse_object_name()?;
        let mut method = None;
        let mut ratio = None;
        let mut on = Vec::new();
        loop {
            if self.consume_keyword("method") {
                if method.is_some() {
                    return self.error("duplicate METHOD clause");
                }
                let word = self.parse_identifier()?;
                method = match ScrambleMethod::from_keyword(&word) {
                    Some(m) => Some(m),
                    None => {
                        return self.error(format!(
                            "unknown scramble method {word} (uniform|stratified|hashed)"
                        ));
                    }
                };
            } else if self.consume_keyword("ratio") {
                if ratio.is_some() {
                    return self.error("duplicate RATIO clause");
                }
                ratio = Some(self.parse_f64("RATIO")?);
            } else if self.consume_keyword("on") {
                if !on.is_empty() {
                    return self.error("duplicate ON clause");
                }
                loop {
                    on.push(self.parse_identifier()?);
                    if !self.consume_token(&Token::Comma) {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        self.skip_statement_end()?;
        Ok(Statement::CreateScramble {
            name,
            table,
            method,
            ratio,
            on,
        })
    }

    /// `DROP SCRAMBLE [IF EXISTS] <name>` / `DROP SCRAMBLES [IF EXISTS] <table>`.
    fn parse_drop_scramble(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("drop")?;
        let plural = self.consume_keyword("scrambles");
        if !plural {
            self.expect_keyword("scramble")?;
        }
        let mut if_exists = false;
        if self.peek().is_keyword("if") {
            self.advance();
            self.expect_keyword("exists")?;
            if_exists = true;
        }
        let name = self.parse_object_name()?;
        self.skip_statement_end()?;
        Ok(if plural {
            Statement::DropScrambles {
                table: name,
                if_exists,
            }
        } else {
            Statement::DropScramble { name, if_exists }
        })
    }

    /// `SHOW SCRAMBLES` / `SHOW STATS` / `SHOW PROFILE [LAST n]` /
    /// `SHOW METRICS`.
    fn parse_show(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("show")?;
        let stmt = if self.consume_keyword("scrambles") {
            Statement::ShowScrambles
        } else if self.consume_keyword("stats") {
            Statement::ShowStats
        } else if self.consume_keyword("metrics") {
            Statement::ShowMetrics
        } else if self.consume_keyword("profile") {
            let last = if self.consume_keyword("last") {
                match self.advance() {
                    Token::Number(n) => Some(n.parse::<u64>().map_err(|_| ParseError {
                        message: format!("invalid LAST count {n}"),
                        offset: self.offset(),
                    })?),
                    other => {
                        return self.error(format!("expected number after LAST, found {other}"));
                    }
                }
            } else {
                None
            };
            Statement::ShowProfile { last }
        } else {
            return self.error(format!(
                "expected SCRAMBLES, STATS, PROFILE or METRICS, found {}",
                self.peek()
            ));
        };
        self.skip_statement_end()?;
        Ok(stmt)
    }

    /// `EXPLAIN [ANALYZE] <statement>` — the inner statement may be any
    /// statement except another `EXPLAIN` (no nesting).
    fn parse_explain(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("explain")?;
        let analyze = self.consume_keyword("analyze");
        let offset = self.offset();
        let inner = self.parse_statement()?;
        if matches!(inner, Statement::Explain { .. }) {
            return Err(ParseError {
                message: "EXPLAIN cannot be nested".into(),
                offset,
            });
        }
        Ok(Statement::Explain {
            analyze,
            statement: Box::new(inner),
        })
    }

    /// `REFRESH SCRAMBLE[S] <table> [FROM <batch>]`.
    fn parse_refresh_scrambles(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("refresh")?;
        if !self.consume_keyword("scrambles") {
            self.expect_keyword("scramble")?;
        }
        let table = self.parse_object_name()?;
        let batch = if self.consume_keyword("from") {
            Some(self.parse_object_name()?)
        } else {
            None
        };
        self.skip_statement_end()?;
        Ok(Statement::RefreshScrambles { table, batch })
    }

    /// `BYPASS <statement>` — the inner statement must be a plain SQL
    /// statement (query, `CREATE TABLE AS`, `DROP TABLE`, `INSERT`): control
    /// statements cannot be bypassed to the underlying database.
    fn parse_bypass(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("bypass")?;
        let offset = self.offset();
        let inner = self.parse_statement()?;
        match inner {
            Statement::Query(_)
            | Statement::CreateTableAs { .. }
            | Statement::DropTable { .. }
            | Statement::InsertIntoSelect { .. } => Ok(Statement::Bypass(Box::new(inner))),
            _ => Err(ParseError {
                message: "BYPASS requires a plain SQL statement, not a control statement".into(),
                offset,
            }),
        }
    }

    /// `SET <option> = <value>` where value is a literal or a bare keyword
    /// (`on`, `off`, `default`).
    fn parse_set_option(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("set")?;
        let name = self.parse_identifier()?.to_ascii_lowercase();
        self.expect_token(&Token::Eq)?;
        let negative = self.consume_token(&Token::Minus);
        let value = match self.advance() {
            Token::Number(n) => {
                let lit = if n.contains(['.', 'e', 'E']) {
                    Literal::Float(n.parse().map_err(|_| ParseError {
                        message: format!("invalid number {n}"),
                        offset: self.offset(),
                    })?)
                } else {
                    Literal::Integer(n.parse().map_err(|_| ParseError {
                        message: format!("invalid number {n}"),
                        offset: self.offset(),
                    })?)
                };
                let lit = if negative {
                    match lit {
                        Literal::Integer(i) => Literal::Integer(-i),
                        Literal::Float(f) => Literal::Float(-f),
                        other => other,
                    }
                } else {
                    lit
                };
                SetValue::Literal(lit)
            }
            Token::StringLit(s) if !negative => SetValue::Literal(Literal::String(s)),
            Token::Word(w) if !negative => {
                if w.eq_ignore_ascii_case("true") {
                    SetValue::Literal(Literal::Boolean(true))
                } else if w.eq_ignore_ascii_case("false") {
                    SetValue::Literal(Literal::Boolean(false))
                } else if w.eq_ignore_ascii_case("null") {
                    SetValue::Literal(Literal::Null)
                } else {
                    SetValue::Ident(w.to_ascii_lowercase())
                }
            }
            other => {
                return self.error(format!("expected SET value, found {other}"));
            }
        };
        self.skip_statement_end()?;
        Ok(Statement::SetOption { name, value })
    }

    /// Parses a numeric token (int or float spelling) as an `f64`.
    fn parse_f64(&mut self, clause: &str) -> Result<f64, ParseError> {
        match self.advance() {
            Token::Number(n) => n.parse().map_err(|_| ParseError {
                message: format!("invalid {clause} value {n}"),
                offset: self.offset(),
            }),
            other => self.error(format!("expected number after {clause}, found {other}")),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Allow a parenthesised query at the top level.
        if self.peek() == &Token::LParen && self.peek_ahead(1).is_keyword("select") {
            self.advance();
            let q = self.parse_query()?;
            self.expect_token(&Token::RParen)?;
            return Ok(q);
        }
        self.expect_keyword("select")?;
        let distinct = self.consume_keyword("distinct");
        let projection = self.parse_projection()?;

        let mut query = Query {
            distinct,
            projection,
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        };

        if self.consume_keyword("from") {
            loop {
                query.from.push(self.parse_table_with_joins()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword("where") {
            query.selection = Some(self.parse_expr()?);
        }
        if self.peek().is_keyword("group") {
            self.advance();
            self.expect_keyword("by")?;
            loop {
                query.group_by.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword("having") {
            query.having = Some(self.parse_expr()?);
        }
        if self.peek().is_keyword("order") {
            self.advance();
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.consume_keyword("desc") {
                    false
                } else {
                    self.consume_keyword("asc");
                    true
                };
                query.order_by.push(OrderByItem { expr, asc });
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword("limit") {
            match self.advance() {
                Token::Number(n) => {
                    let v: u64 = n.parse().map_err(|_| ParseError {
                        message: format!("invalid LIMIT value {n}"),
                        offset: self.offset(),
                    })?;
                    query.limit = Some(v);
                }
                other => {
                    return self.error(format!("expected number after LIMIT, found {other}"));
                }
            }
        }
        Ok(query)
    }

    fn parse_projection(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek() == &Token::Star {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // qualified wildcard: ident.*
        if matches!(self.peek(), Token::Word(_) | Token::QuotedIdent(_))
            && self.peek_ahead(1) == &Token::Dot
            && self.peek_ahead(2) == &Token::Star
        {
            let table = self.parse_identifier()?;
            self.advance(); // dot
            self.advance(); // star
            return Ok(SelectItem::QualifiedWildcard(table));
        }
        let expr = self.parse_expr()?;
        if self.consume_keyword("as") {
            let alias = self.parse_identifier()?;
            return Ok(SelectItem::ExprWithAlias { expr, alias });
        }
        // implicit alias: `expr ident` (but not when the next word is a clause keyword)
        if let Token::Word(w) = self.peek() {
            if !is_reserved_after_expr(w) {
                let alias = self.parse_identifier()?;
                return Ok(SelectItem::ExprWithAlias { expr, alias });
            }
        }
        if let Token::QuotedIdent(_) = self.peek() {
            let alias = self.parse_identifier()?;
            return Ok(SelectItem::ExprWithAlias { expr, alias });
        }
        Ok(SelectItem::Expr(expr))
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    fn parse_table_with_joins(&mut self) -> Result<TableWithJoins, ParseError> {
        let relation = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.peek().is_keyword("inner") {
                self.advance();
                self.expect_keyword("join")?;
                JoinType::Inner
            } else if self.peek().is_keyword("join") {
                self.advance();
                JoinType::Inner
            } else if self.peek().is_keyword("left") {
                self.advance();
                self.consume_keyword("outer");
                self.expect_keyword("join")?;
                JoinType::Left
            } else if self.peek().is_keyword("right") {
                self.advance();
                self.consume_keyword("outer");
                self.expect_keyword("join")?;
                JoinType::Right
            } else if self.peek().is_keyword("cross") {
                self.advance();
                self.expect_keyword("join")?;
                JoinType::Cross
            } else {
                break;
            };
            let relation = self.parse_table_factor()?;
            let constraint = if self.consume_keyword("on") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join {
                relation,
                join_type,
                constraint,
            });
        }
        Ok(TableWithJoins { relation, joins })
    }

    fn parse_table_factor(&mut self) -> Result<TableFactor, ParseError> {
        if self.peek() == &Token::LParen {
            self.advance();
            let subquery = self.parse_query()?;
            self.expect_token(&Token::RParen)?;
            let alias = self.parse_optional_table_alias()?;
            return Ok(TableFactor::Derived {
                subquery: Box::new(subquery),
                alias,
            });
        }
        let name = self.parse_object_name()?;
        let alias = self.parse_optional_table_alias()?;
        Ok(TableFactor::Table { name, alias })
    }

    fn parse_optional_table_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.consume_keyword("as") {
            return Ok(Some(self.parse_identifier()?));
        }
        if let Token::Word(w) = self.peek() {
            if !is_reserved_after_table(w) {
                return Ok(Some(self.parse_identifier()?));
            }
        }
        if let Token::QuotedIdent(_) = self.peek() {
            return Ok(Some(self.parse_identifier()?));
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.peek().is_keyword("or") {
            self.advance();
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.peek().is_keyword("and") {
            self.advance();
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.peek().is_keyword("not") && !self.peek_ahead(1).is_keyword("exists") {
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek().is_keyword("is") {
            self.advance();
            let negated = self.consume_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / LIKE / BETWEEN
        let mut negated = false;
        if self.peek().is_keyword("not")
            && (self.peek_ahead(1).is_keyword("in")
                || self.peek_ahead(1).is_keyword("like")
                || self.peek_ahead(1).is_keyword("between"))
        {
            self.advance();
            negated = true;
        }
        if self.peek().is_keyword("in") {
            self.advance();
            self.expect_token(&Token::LParen)?;
            if self.peek().is_keyword("select") {
                let subquery = self.parse_query()?;
                self.expect_token(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(subquery),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.peek().is_keyword("like") {
            self.advance();
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.peek().is_keyword("between") {
            self.advance();
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        // plain comparison
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::Neq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                Token::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Multiply,
                Token::Slash => BinaryOp::Divide,
                Token::Percent => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.advance();
                let inner = self.parse_unary()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOp::Minus,
                    expr: Box::new(inner),
                })
            }
            Token::Plus => {
                self.advance();
                let inner = self.parse_unary()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOp::Plus,
                    expr: Box::new(inner),
                })
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.advance();
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let v: f64 = n.parse().map_err(|_| ParseError {
                        message: format!("invalid number {n}"),
                        offset: self.offset(),
                    })?;
                    Ok(Expr::Literal(Literal::Float(v)))
                } else {
                    match n.parse::<i64>() {
                        Ok(v) => Ok(Expr::Literal(Literal::Integer(v))),
                        Err(_) => {
                            let v: f64 = n.parse().map_err(|_| ParseError {
                                message: format!("invalid number {n}"),
                                offset: self.offset(),
                            })?;
                            Ok(Expr::Literal(Literal::Float(v)))
                        }
                    }
                }
            }
            Token::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::Star => {
                self.advance();
                Ok(Expr::Wildcard)
            }
            Token::LParen => {
                self.advance();
                if self.peek().is_keyword("select") {
                    let q = self.parse_query()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let inner = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(Expr::Nested(Box::new(inner)))
            }
            Token::Word(w) => {
                // literals and special forms
                if w.eq_ignore_ascii_case("null") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Null));
                }
                if w.eq_ignore_ascii_case("true") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Boolean(true)));
                }
                if w.eq_ignore_ascii_case("false") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Boolean(false)));
                }
                if w.eq_ignore_ascii_case("case") {
                    return self.parse_case();
                }
                if w.eq_ignore_ascii_case("cast") {
                    return self.parse_cast();
                }
                if w.eq_ignore_ascii_case("exists") {
                    self.advance();
                    self.expect_token(&Token::LParen)?;
                    let q = self.parse_query()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::Exists {
                        subquery: Box::new(q),
                        negated: false,
                    });
                }
                if w.eq_ignore_ascii_case("not") && self.peek_ahead(1).is_keyword("exists") {
                    self.advance();
                    self.advance();
                    self.expect_token(&Token::LParen)?;
                    let q = self.parse_query()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::Exists {
                        subquery: Box::new(q),
                        negated: true,
                    });
                }
                if w.eq_ignore_ascii_case("interval") {
                    return self.parse_interval();
                }
                // function call?
                if self.peek_ahead(1) == &Token::LParen {
                    return self.parse_function(w.to_ascii_lowercase());
                }
                self.parse_column_ref()
            }
            Token::QuotedIdent(_) => self.parse_column_ref(),
            other => self.error(format!("unexpected token in expression: {other}")),
        }
    }

    /// Parses `INTERVAL 'n' unit` (as in TPC-H date arithmetic) into the
    /// equivalent number of days as an integer literal; the engine stores
    /// dates as integer day numbers, so interval arithmetic stays closed
    /// over integers.
    fn parse_interval(&mut self) -> Result<Expr, ParseError> {
        self.advance(); // INTERVAL
        let amount = match self.advance() {
            Token::StringLit(s) => s,
            Token::Number(n) => n,
            other => {
                return self.error(format!("expected interval amount, found {other}"));
            }
        };
        let value: f64 = amount.trim().parse().map_err(|_| ParseError {
            message: format!("invalid interval amount {amount}"),
            offset: self.offset(),
        })?;
        let unit = self.parse_identifier()?.to_ascii_lowercase();
        let days = match unit.as_str() {
            "day" | "days" => value,
            "month" | "months" => value * 30.0,
            "year" | "years" => value * 365.0,
            other => {
                return self.error(format!("unsupported interval unit {other}"));
            }
        };
        Ok(Expr::Literal(Literal::Integer(days.round() as i64)))
    }

    fn parse_column_ref(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_identifier()?;
        if self.peek() == &Token::Dot {
            self.advance();
            let second = self.parse_identifier()?;
            Ok(Expr::Column {
                table: Some(first),
                name: second,
            })
        } else {
            Ok(Expr::Column {
                table: None,
                name: first,
            })
        }
    }

    fn parse_function(&mut self, name: String) -> Result<Expr, ParseError> {
        self.advance(); // name
        self.expect_token(&Token::LParen)?;
        let mut distinct = false;
        let mut args = Vec::new();
        if self.peek() != &Token::RParen {
            distinct = self.consume_keyword("distinct");
            loop {
                args.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_token(&Token::RParen)?;
        let over = if self.peek().is_keyword("over") {
            self.advance();
            self.expect_token(&Token::LParen)?;
            let mut partition_by = Vec::new();
            let mut order_by = Vec::new();
            if self.peek().is_keyword("partition") {
                self.advance();
                self.expect_keyword("by")?;
                loop {
                    partition_by.push(self.parse_expr()?);
                    if !self.consume_token(&Token::Comma) {
                        break;
                    }
                }
            }
            if self.peek().is_keyword("order") {
                self.advance();
                self.expect_keyword("by")?;
                loop {
                    let expr = self.parse_expr()?;
                    let asc = if self.consume_keyword("desc") {
                        false
                    } else {
                        self.consume_keyword("asc");
                        true
                    };
                    order_by.push(OrderByItem { expr, asc });
                    if !self.consume_token(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect_token(&Token::RParen)?;
            Some(WindowSpec {
                partition_by,
                order_by,
            })
        } else {
            None
        };
        Ok(Expr::Function(FunctionCall {
            name,
            args,
            distinct,
            over,
        }))
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.advance(); // CASE
        let operand = if !self.peek().is_keyword("when") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut when_then = Vec::new();
        while self.consume_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let value = self.parse_expr()?;
            when_then.push((cond, value));
        }
        let else_expr = if self.consume_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        if when_then.is_empty() {
            return self.error("CASE expression requires at least one WHEN branch");
        }
        Ok(Expr::Case {
            operand,
            when_then,
            else_expr,
        })
    }

    fn parse_cast(&mut self) -> Result<Expr, ParseError> {
        self.advance(); // CAST
        self.expect_token(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword("as")?;
        let ty_name = self.parse_identifier()?.to_ascii_lowercase();
        // swallow optional precision like VARCHAR(20) / DECIMAL(10, 2)
        if self.consume_token(&Token::LParen) {
            while self.peek() != &Token::RParen && self.peek() != &Token::Eof {
                self.advance();
            }
            self.expect_token(&Token::RParen)?;
        }
        self.expect_token(&Token::RParen)?;
        let data_type = match ty_name.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => CastType::Integer,
            "double" | "float" | "real" | "decimal" | "numeric" => CastType::Double,
            "varchar" | "char" | "string" | "text" => CastType::Varchar,
            "boolean" | "bool" => CastType::Boolean,
            other => {
                return self.error(format!("unsupported cast target type {other}"));
            }
        };
        Ok(Expr::Cast {
            expr: Box::new(expr),
            data_type,
        })
    }
}

/// Keywords that terminate an implicit select-item alias.
fn is_reserved_after_expr(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "from", "where", "group", "having", "order", "limit", "union", "inner", "left", "right",
        "cross", "join", "on", "as", "and", "or", "not", "when", "then", "else", "end", "asc",
        "desc", "between", "like", "in", "is", "over",
    ];
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Keywords that terminate an implicit table alias.
fn is_reserved_after_table(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "where", "group", "having", "order", "limit", "union", "inner", "left", "right", "cross",
        "join", "on", "as", "and", "or", "not",
    ];
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_projection_aliases() {
        let stmt = parse_statement("SELECT a AS x, b y, count(*) cnt FROM t").unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        assert_eq!(q.projection.len(), 3);
        assert_eq!(q.projection[0].alias(), Some("x"));
        assert_eq!(q.projection[1].alias(), Some("y"));
        assert_eq!(q.projection[2].alias(), Some("cnt"));
    }

    #[test]
    fn parses_joins_with_on() {
        let stmt = parse_statement(
            "SELECT * FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             LEFT JOIN products pr ON p.product_id = pr.product_id",
        )
        .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].joins.len(), 2);
        assert_eq!(q.from[0].joins[0].join_type, JoinType::Inner);
        assert_eq!(q.from[0].joins[1].join_type, JoinType::Left);
    }

    #[test]
    fn parses_group_by_having_order_limit() {
        let stmt = parse_statement(
            "SELECT city, sum(price) FROM orders GROUP BY city HAVING sum(price) > 100 \
             ORDER BY sum(price) DESC LIMIT 10",
        )
        .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_derived_table() {
        let stmt = parse_statement(
            "SELECT avg(sales) FROM (SELECT city, sum(price) AS sales FROM orders GROUP BY city) AS t",
        )
        .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        match &q.from[0].relation {
            TableFactor::Derived { alias, .. } => assert_eq!(alias.as_deref(), Some("t")),
            other => panic!("expected derived table, got {other:?}"),
        }
    }

    #[test]
    fn parses_scalar_subquery_comparison() {
        let stmt = parse_statement(
            "SELECT * FROM order_products WHERE price > (SELECT avg(price) FROM order_products)",
        )
        .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        match q.selection.unwrap() {
            Expr::BinaryOp { right, .. } => {
                assert!(matches!(*right, Expr::ScalarSubquery(_)));
            }
            other => panic!("unexpected selection {other:?}"),
        }
    }

    #[test]
    fn parses_window_function() {
        let e = parse_expression("sum(cnt) OVER (PARTITION BY city, sid)").unwrap();
        let Expr::Function(f) = e else { panic!() };
        assert_eq!(f.name, "sum");
        assert_eq!(f.over.unwrap().partition_by.len(), 2);
    }

    #[test]
    fn parses_case_when() {
        let e = parse_expression(
            "CASE WHEN strata_size > 2000 THEN 0.01 WHEN strata_size > 1900 THEN 0.012 ELSE 1 END",
        )
        .unwrap();
        let Expr::Case {
            when_then,
            else_expr,
            ..
        } = e
        else {
            panic!()
        };
        assert_eq!(when_then.len(), 2);
        assert!(else_expr.is_some());
    }

    #[test]
    fn parses_count_distinct() {
        let e = parse_expression("count(DISTINCT order_id)").unwrap();
        let Expr::Function(f) = e else { panic!() };
        assert!(f.distinct);
        assert_eq!(f.name, "count");
    }

    #[test]
    fn parses_ddl_statements() {
        let s = parse_statement("CREATE TABLE s AS SELECT * FROM t WHERE rand() < 0.01").unwrap();
        assert!(matches!(s, Statement::CreateTableAs { .. }));
        let s = parse_statement("DROP TABLE IF EXISTS verdict_meta.samples").unwrap();
        assert!(matches!(
            s,
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        let s = parse_statement("INSERT INTO s SELECT * FROM t2").unwrap();
        assert!(matches!(s, Statement::InsertIntoSelect { .. }));
    }

    #[test]
    fn parses_in_like_between() {
        let e =
            parse_expression("a IN (1, 2, 3) AND b LIKE '%x%' AND c NOT BETWEEN 1 AND 5").unwrap();
        // top-level is AND of ANDs; just ensure it parses and contains expected variants
        let printed = format!("{e:?}");
        assert!(printed.contains("InList"));
        assert!(printed.contains("Like"));
        assert!(printed.contains("Between"));
    }

    #[test]
    fn parses_exists_subquery() {
        let e = parse_expression("EXISTS (SELECT 1 FROM t WHERE t.a = 1)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: false, .. }));
        let e = parse_expression("NOT EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_interval_literal_to_days() {
        let e = parse_expression("o_orderdate + INTERVAL '3' month").unwrap();
        let Expr::BinaryOp { right, .. } = e else {
            panic!()
        };
        assert_eq!(*right, Expr::Literal(Literal::Integer(90)));
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts = parse_statements("SELECT 1; SELECT 2; DROP TABLE IF EXISTS t;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parses_create_scramble_with_all_clauses() {
        let s = parse_statement(
            "CREATE SCRAMBLE s_orders FROM orders METHOD stratified RATIO 0.05 ON city, dow",
        )
        .unwrap();
        let Statement::CreateScramble {
            name,
            table,
            method,
            ratio,
            on,
        } = s
        else {
            panic!()
        };
        assert_eq!(name.base_name(), "s_orders");
        assert_eq!(table.base_name(), "orders");
        assert_eq!(method, Some(ScrambleMethod::Stratified));
        assert_eq!(ratio, Some(0.05));
        assert_eq!(on, vec!["city".to_string(), "dow".to_string()]);
    }

    #[test]
    fn parses_create_scramble_clauses_in_any_order() {
        let a = parse_statement("CREATE SCRAMBLE s FROM t ON k RATIO 0.1 METHOD hashed").unwrap();
        let b = parse_statement("CREATE SCRAMBLE s FROM t METHOD hashed RATIO 0.1 ON k").unwrap();
        assert_eq!(a, b);
        assert!(parse_statement("CREATE SCRAMBLE s FROM t METHOD bogus").is_err());
        assert!(parse_statement("CREATE SCRAMBLE s FROM t RATIO 0.1 RATIO 0.2").is_err());
    }

    #[test]
    fn parses_create_scrambles_recommended_set() {
        let s = parse_statement("CREATE SCRAMBLES FROM orders").unwrap();
        assert!(
            matches!(s, Statement::CreateScrambles { ref table } if table.base_name() == "orders")
        );
    }

    #[test]
    fn parses_drop_scramble_singular_and_plural() {
        let s = parse_statement("DROP SCRAMBLE IF EXISTS verdict_sample_orders_uniform").unwrap();
        assert!(matches!(
            s,
            Statement::DropScramble {
                if_exists: true,
                ..
            }
        ));
        let s = parse_statement("DROP SCRAMBLES orders").unwrap();
        assert!(matches!(
            s,
            Statement::DropScrambles {
                if_exists: false,
                ..
            }
        ));
    }

    #[test]
    fn parses_show_refresh_and_stream() {
        assert_eq!(
            parse_statement("SHOW SCRAMBLES").unwrap(),
            Statement::ShowScrambles
        );
        assert_eq!(
            parse_statement("show stats;").unwrap(),
            Statement::ShowStats
        );
        let s = parse_statement("REFRESH SCRAMBLES sales FROM sales_batch").unwrap();
        let Statement::RefreshScrambles { table, batch } = s else {
            panic!()
        };
        assert_eq!(table.base_name(), "sales");
        assert_eq!(batch.unwrap().base_name(), "sales_batch");
        // Singular spelling and full-rebuild form (no FROM).
        let s = parse_statement("REFRESH SCRAMBLE sales").unwrap();
        assert!(matches!(s, Statement::RefreshScrambles { batch: None, .. }));
        let s = parse_statement("STREAM SELECT avg(x) FROM t").unwrap();
        assert!(matches!(s, Statement::Stream(_)));
    }

    #[test]
    fn parses_explain_show_profile_and_show_metrics() {
        let s = parse_statement("EXPLAIN SELECT avg(x) FROM t").unwrap();
        let Statement::Explain { analyze, statement } = s else {
            panic!()
        };
        assert!(!analyze);
        assert!(matches!(*statement, Statement::Query(_)));
        let s = parse_statement("explain analyze bypass select 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        // EXPLAIN wraps any statement, including STREAM, but never another
        // EXPLAIN.
        let s = parse_statement("EXPLAIN STREAM SELECT avg(x) FROM t").unwrap();
        let Statement::Explain { statement, .. } = s else {
            panic!()
        };
        assert!(matches!(*statement, Statement::Stream(_)));
        assert!(parse_statement("EXPLAIN EXPLAIN SELECT 1").is_err());
        assert_eq!(
            parse_statement("SHOW PROFILE").unwrap(),
            Statement::ShowProfile { last: None }
        );
        assert_eq!(
            parse_statement("show profile last 10;").unwrap(),
            Statement::ShowProfile { last: Some(10) }
        );
        assert!(parse_statement("SHOW PROFILE LAST").is_err());
        assert!(parse_statement("SHOW PROFILE LAST x").is_err());
        assert_eq!(
            parse_statement("SHOW METRICS").unwrap(),
            Statement::ShowMetrics
        );
    }

    #[test]
    fn parses_bypass_of_plain_statements_only() {
        let s = parse_statement("BYPASS SELECT count(*) FROM t").unwrap();
        let Statement::Bypass(inner) = s else {
            panic!()
        };
        assert!(matches!(*inner, Statement::Query(_)));
        let s = parse_statement("BYPASS INSERT INTO t SELECT * FROM b").unwrap();
        assert!(matches!(s, Statement::Bypass(_)));
        // Control statements cannot be bypassed.
        assert!(parse_statement("BYPASS SHOW STATS").is_err());
        assert!(parse_statement("BYPASS BYPASS SELECT 1").is_err());
    }

    #[test]
    fn parses_set_option_values() {
        let s = parse_statement("SET target_error = 0.05").unwrap();
        assert_eq!(
            s,
            Statement::SetOption {
                name: "target_error".into(),
                value: SetValue::Literal(Literal::Float(0.05)),
            }
        );
        let s = parse_statement("SET Bypass = ON").unwrap();
        assert_eq!(
            s,
            Statement::SetOption {
                name: "bypass".into(),
                value: SetValue::Ident("on".into()),
            }
        );
        let s = parse_statement("SET parallelism = 4").unwrap();
        assert!(matches!(
            s,
            Statement::SetOption {
                value: SetValue::Literal(Literal::Integer(4)),
                ..
            }
        ));
        let s = parse_statement("SET target_error = default").unwrap();
        assert!(matches!(
            s,
            Statement::SetOption {
                value: SetValue::Ident(ref w),
                ..
            } if w == "default"
        ));
        assert!(parse_statement("SET target_error 0.05").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM WHERE").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn parses_nested_parentheses_precedence() {
        let e = parse_expression("(a + b) * c").unwrap();
        let Expr::BinaryOp { left, op, .. } = e else {
            panic!()
        };
        assert_eq!(op, BinaryOp::Multiply);
        assert!(matches!(*left, Expr::Nested(_)));
    }

    #[test]
    fn parses_cast() {
        let e = parse_expression("CAST(x AS DOUBLE) + CAST(y AS BIGINT)").unwrap();
        let printed = format!("{e:?}");
        assert!(printed.contains("Double"));
        assert!(printed.contains("Integer"));
    }
}
