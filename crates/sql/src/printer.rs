//! Dialect-aware SQL printer: renders the AST back into SQL text.
//!
//! This is the final step of the paper's Syntax Changer: after the AQP
//! Rewriter has produced a rewritten logical query, the printer emits SQL
//! that the target engine accepts.

use crate::ast::*;
use crate::dialect::Dialect;

/// Renders a statement as SQL text in the given dialect.
pub fn print_statement(stmt: &Statement, dialect: &dyn Dialect) -> String {
    match stmt {
        Statement::Query(q) => print_query(q, dialect),
        Statement::CreateTableAs {
            name,
            query,
            if_not_exists,
        } => {
            let ine = if *if_not_exists { "IF NOT EXISTS " } else { "" };
            format!(
                "CREATE TABLE {ine}{} AS {}",
                print_object_name(name, dialect),
                print_query(query, dialect)
            )
        }
        Statement::DropTable { name, if_exists } => {
            let ie = if *if_exists { "IF EXISTS " } else { "" };
            format!("DROP TABLE {ie}{}", print_object_name(name, dialect))
        }
        Statement::InsertIntoSelect { table, query } => {
            format!(
                "INSERT INTO {} {}",
                print_object_name(table, dialect),
                print_query(query, dialect)
            )
        }
        Statement::CreateScramble {
            name,
            table,
            method,
            ratio,
            on,
        } => {
            let mut s = format!(
                "CREATE SCRAMBLE {} FROM {}",
                print_object_name(name, dialect),
                print_object_name(table, dialect)
            );
            if let Some(m) = method {
                s.push_str(&format!(" METHOD {m}"));
            }
            if let Some(r) = ratio {
                s.push_str(" RATIO ");
                s.push_str(&print_literal(&Literal::Float(*r)));
            }
            if !on.is_empty() {
                let cols: Vec<String> = on.iter().map(|c| dialect.quote_ident(c)).collect();
                s.push_str(&format!(" ON {}", cols.join(", ")));
            }
            s
        }
        Statement::CreateScrambles { table } => {
            format!(
                "CREATE SCRAMBLES FROM {}",
                print_object_name(table, dialect)
            )
        }
        Statement::DropScramble { name, if_exists } => {
            let ie = if *if_exists { "IF EXISTS " } else { "" };
            format!("DROP SCRAMBLE {ie}{}", print_object_name(name, dialect))
        }
        Statement::DropScrambles { table, if_exists } => {
            let ie = if *if_exists { "IF EXISTS " } else { "" };
            format!("DROP SCRAMBLES {ie}{}", print_object_name(table, dialect))
        }
        Statement::ShowScrambles => "SHOW SCRAMBLES".to_string(),
        Statement::ShowStats => "SHOW STATS".to_string(),
        Statement::RefreshScrambles { table, batch } => {
            let mut s = format!("REFRESH SCRAMBLES {}", print_object_name(table, dialect));
            if let Some(b) = batch {
                s.push_str(&format!(" FROM {}", print_object_name(b, dialect)));
            }
            s
        }
        Statement::Bypass(inner) => format!("BYPASS {}", print_statement(inner, dialect)),
        Statement::SetOption { name, value } => {
            let v = match value {
                SetValue::Literal(l) => print_literal(l),
                SetValue::Ident(w) => w.clone(),
            };
            format!("SET {} = {v}", dialect.quote_ident(name))
        }
        Statement::Stream(q) => format!("STREAM {}", print_query(q, dialect)),
        Statement::Explain { analyze, statement } => format!(
            "EXPLAIN {}{}",
            if *analyze { "ANALYZE " } else { "" },
            print_statement(statement, dialect)
        ),
        Statement::ShowProfile { last } => match last {
            Some(n) => format!("SHOW PROFILE LAST {n}"),
            None => "SHOW PROFILE".to_string(),
        },
        Statement::ShowMetrics => "SHOW METRICS".to_string(),
    }
}

/// Renders a query as SQL text in the given dialect.
pub fn print_query(query: &Query, dialect: &dyn Dialect) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("SELECT ");
    if query.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = query
        .projection
        .iter()
        .map(|item| print_select_item(item, dialect))
        .collect();
    out.push_str(&items.join(", "));

    if !query.from.is_empty() {
        out.push_str(" FROM ");
        let froms: Vec<String> = query
            .from
            .iter()
            .map(|twj| print_table_with_joins(twj, dialect))
            .collect();
        out.push_str(&froms.join(", "));
    }
    if let Some(sel) = &query.selection {
        out.push_str(" WHERE ");
        out.push_str(&print_expr(sel, dialect));
    }
    if !query.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        let gs: Vec<String> = query
            .group_by
            .iter()
            .map(|e| print_expr(e, dialect))
            .collect();
        out.push_str(&gs.join(", "));
    }
    if let Some(h) = &query.having {
        out.push_str(" HAVING ");
        out.push_str(&print_expr(h, dialect));
    }
    if !query.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        let os: Vec<String> = query
            .order_by
            .iter()
            .map(|o| print_order_by_item(o, dialect))
            .collect();
        out.push_str(&os.join(", "));
    }
    if let Some(limit) = query.limit {
        out.push_str(&format!(" LIMIT {limit}"));
    }
    out
}

fn print_order_by_item(item: &OrderByItem, dialect: &dyn Dialect) -> String {
    format!(
        "{}{}",
        print_expr(&item.expr, dialect),
        if item.asc { "" } else { " DESC" }
    )
}

fn print_object_name(name: &ObjectName, dialect: &dyn Dialect) -> String {
    name.0
        .iter()
        .map(|p| dialect.quote_ident(p))
        .collect::<Vec<_>>()
        .join(".")
}

fn print_select_item(item: &SelectItem, dialect: &dyn Dialect) -> String {
    match item {
        SelectItem::Expr(e) => print_expr(e, dialect),
        SelectItem::ExprWithAlias { expr, alias } => {
            format!(
                "{} AS {}",
                print_expr(expr, dialect),
                dialect.quote_ident(alias)
            )
        }
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::QualifiedWildcard(t) => format!("{}.*", dialect.quote_ident(t)),
    }
}

fn print_table_factor(tf: &TableFactor, dialect: &dyn Dialect) -> String {
    match tf {
        TableFactor::Table { name, alias } => {
            let mut s = print_object_name(name, dialect);
            if let Some(a) = alias {
                s.push_str(" AS ");
                s.push_str(&dialect.quote_ident(a));
            }
            s
        }
        TableFactor::Derived { subquery, alias } => {
            let mut s = format!("({})", print_query(subquery, dialect));
            if let Some(a) = alias {
                s.push_str(" AS ");
                s.push_str(&dialect.quote_ident(a));
            }
            s
        }
    }
}

fn print_table_with_joins(twj: &TableWithJoins, dialect: &dyn Dialect) -> String {
    let mut s = print_table_factor(&twj.relation, dialect);
    for join in &twj.joins {
        s.push(' ');
        s.push_str(&join.join_type.to_string());
        s.push(' ');
        s.push_str(&print_table_factor(&join.relation, dialect));
        if let Some(c) = &join.constraint {
            s.push_str(" ON ");
            s.push_str(&print_expr(c, dialect));
        }
    }
    s
}

/// Renders an expression as SQL text in the given dialect.
pub fn print_expr(expr: &Expr, dialect: &dyn Dialect) -> String {
    match expr {
        Expr::Column { table, name } => match table {
            Some(t) => format!("{}.{}", dialect.quote_ident(t), dialect.quote_ident(name)),
            None => dialect.quote_ident(name),
        },
        Expr::Literal(lit) => print_literal(lit),
        Expr::Wildcard => "*".to_string(),
        Expr::BinaryOp { left, op, right } => {
            format!(
                "{} {} {}",
                print_expr(left, dialect),
                op,
                print_expr(right, dialect)
            )
        }
        Expr::UnaryOp { op, expr } => match op {
            UnaryOp::Not => format!("NOT {}", print_expr(expr, dialect)),
            UnaryOp::Minus => format!("-{}", print_expr(expr, dialect)),
            UnaryOp::Plus => format!("+{}", print_expr(expr, dialect)),
        },
        Expr::Function(f) => print_function(f, dialect),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            if let Some(op) = operand {
                s.push(' ');
                s.push_str(&print_expr(op, dialect));
            }
            for (w, t) in when_then {
                s.push_str(" WHEN ");
                s.push_str(&print_expr(w, dialect));
                s.push_str(" THEN ");
                s.push_str(&print_expr(t, dialect));
            }
            if let Some(e) = else_expr {
                s.push_str(" ELSE ");
                s.push_str(&print_expr(e, dialect));
            }
            s.push_str(" END");
            s
        }
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            print_expr(expr, dialect),
            if *negated { "NOT " } else { "" }
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(|e| print_expr(e, dialect)).collect();
            format!(
                "{} {}IN ({})",
                print_expr(expr, dialect),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => format!(
            "{} {}IN ({})",
            print_expr(expr, dialect),
            if *negated { "NOT " } else { "" },
            print_query(subquery, dialect)
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            print_expr(expr, dialect),
            if *negated { "NOT " } else { "" },
            print_expr(low, dialect),
            print_expr(high, dialect)
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE {}",
            print_expr(expr, dialect),
            if *negated { "NOT " } else { "" },
            print_expr(pattern, dialect)
        ),
        Expr::ScalarSubquery(q) => format!("({})", print_query(q, dialect)),
        Expr::Exists { subquery, negated } => format!(
            "{}EXISTS ({})",
            if *negated { "NOT " } else { "" },
            print_query(subquery, dialect)
        ),
        Expr::Cast { expr, data_type } => {
            format!("CAST({} AS {})", print_expr(expr, dialect), data_type)
        }
        Expr::Nested(e) => format!("({})", print_expr(e, dialect)),
    }
}

fn print_function(f: &FunctionCall, dialect: &dyn Dialect) -> String {
    // Dialect-specific spelling of the random function.
    if f.name == "rand" && f.args.is_empty() && f.over.is_none() {
        return dialect.random_function().to_string();
    }
    let args: Vec<String> = f.args.iter().map(|a| print_expr(a, dialect)).collect();
    let mut s = format!(
        "{}({}{})",
        f.name,
        if f.distinct { "DISTINCT " } else { "" },
        args.join(", ")
    );
    if let Some(w) = &f.over {
        s.push_str(" OVER (");
        if !w.partition_by.is_empty() {
            s.push_str("PARTITION BY ");
            let ps: Vec<String> = w
                .partition_by
                .iter()
                .map(|e| print_expr(e, dialect))
                .collect();
            s.push_str(&ps.join(", "));
        }
        if !w.order_by.is_empty() {
            if !w.partition_by.is_empty() {
                s.push(' ');
            }
            s.push_str("ORDER BY ");
            let os: Vec<String> = w
                .order_by
                .iter()
                .map(|o| print_order_by_item(o, dialect))
                .collect();
            s.push_str(&os.join(", "));
        }
        s.push(')');
    }
    s
}

fn print_literal(lit: &Literal) -> String {
    match lit {
        Literal::Null => "NULL".to_string(),
        Literal::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Literal::Integer(i) => i.to_string(),
        Literal::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // keep a decimal point so the literal re-parses as a float
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Literal::String(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{GenericDialect, ImpalaDialect, RedshiftDialect};
    use crate::parser::{parse_expression, parse_statement};

    #[test]
    fn prints_simple_query() {
        let stmt =
            parse_statement("select city, count(*) cnt from orders where price > 10 group by city")
                .unwrap();
        let sql = print_statement(&stmt, &GenericDialect);
        assert_eq!(
            sql,
            "SELECT city, count(*) AS cnt FROM orders WHERE price > 10 GROUP BY city"
        );
    }

    #[test]
    fn prints_rand_per_dialect() {
        let e = parse_expression("rand() < 0.01").unwrap();
        assert_eq!(print_expr(&e, &GenericDialect), "rand() < 0.01");
        assert_eq!(print_expr(&e, &RedshiftDialect), "random() < 0.01");
        assert_eq!(print_expr(&e, &ImpalaDialect), "rand() < 0.01");
    }

    #[test]
    fn prints_string_escaping() {
        let e = Expr::string("it's");
        assert_eq!(print_expr(&e, &GenericDialect), "'it''s'");
    }

    #[test]
    fn prints_quoted_identifiers_when_needed() {
        let e = Expr::qcol("vt1", "sub size");
        assert_eq!(print_expr(&e, &GenericDialect), "vt1.`sub size`");
        assert_eq!(print_expr(&e, &RedshiftDialect), "vt1.\"sub size\"");
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        let e = Expr::float(2.0);
        let printed = print_expr(&e, &GenericDialect);
        assert_eq!(printed, "2.0");
        let back = parse_expression(&printed).unwrap();
        assert_eq!(back, Expr::Literal(Literal::Float(2.0)));
    }

    #[test]
    fn prints_window_function() {
        let e = parse_expression("sum(cc) over (partition by l_returnflag)").unwrap();
        assert_eq!(
            print_expr(&e, &GenericDialect),
            "sum(cc) OVER (PARTITION BY l_returnflag)"
        );
    }
}
