//! Token definitions produced by the [`crate::lexer`].

use std::fmt;

/// A lexical token in a SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or identifier (unquoted). Keyword recognition happens in the parser,
    /// case-insensitively, so `Word("select")` and `Word("SELECT")` are equivalent.
    Word(String),
    /// A quoted identifier, e.g. `` `l_returnflag` `` or `"l_returnflag"`.
    QuotedIdent(String),
    /// A single-quoted string literal with escapes already resolved.
    StringLit(String),
    /// An integer literal.
    Number(String),
    /// Punctuation and operators.
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// `||` string concatenation operator.
    Concat,
    /// End of input marker.
    Eof,
}

impl Token {
    /// Returns the keyword/identifier text if this token is a bare word.
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w.as_str()),
            _ => None,
        }
    }

    /// True when the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::QuotedIdent(w) => write!(f, "`{w}`"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
            Token::Concat => write!(f, "||"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with the byte offset at which it starts, used for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = Token::Word("SeLeCt".to_string());
        assert!(t.is_keyword("select"));
        assert!(t.is_keyword("SELECT"));
        assert!(!t.is_keyword("from"));
    }

    #[test]
    fn display_reconstructs_symbols() {
        assert_eq!(Token::LtEq.to_string(), "<=");
        assert_eq!(Token::Concat.to_string(), "||");
        assert_eq!(Token::StringLit("a'b".into()).to_string(), "'a'b'");
    }
}
