//! AST visitors and mutators used by the AQP rewriter.
//!
//! Two styles are provided:
//! * read-only walkers ([`walk_expr`], [`walk_query`]) that call a closure on
//!   every sub-expression, and
//! * mutating transformers ([`transform_expr`], [`transform_query_tables`])
//!   that rebuild the tree bottom-up, used to swap base tables for sample
//!   tables and to flatten comparison subqueries.

use crate::ast::*;

/// Calls `f` on `expr` and every sub-expression (pre-order).
pub fn walk_expr(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::BinaryOp { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::UnaryOp { expr, .. } => walk_expr(expr, f),
        Expr::Function(fc) => {
            for a in &fc.args {
                walk_expr(a, f);
            }
            if let Some(w) = &fc.over {
                for p in &w.partition_by {
                    walk_expr(p, f);
                }
                for o in &w.order_by {
                    walk_expr(&o.expr, f);
                }
            }
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(op) = operand {
                walk_expr(op, f);
            }
            for (w, t) in when_then {
                walk_expr(w, f);
                walk_expr(t, f);
            }
            if let Some(e) = else_expr {
                walk_expr(e, f);
            }
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for e in list {
                walk_expr(e, f);
            }
        }
        Expr::InSubquery { expr, .. } => walk_expr(expr, f),
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::Nested(e) => walk_expr(e, f),
        Expr::Column { .. }
        | Expr::Literal(_)
        | Expr::Wildcard
        | Expr::ScalarSubquery(_)
        | Expr::Exists { .. } => {}
    }
}

/// Calls `f` on every expression appearing anywhere in the query (select
/// list, predicates, group by, having, order by, join constraints), and
/// recursively in derived tables.
pub fn walk_query(query: &Query, f: &mut dyn FnMut(&Expr)) {
    for item in &query.projection {
        if let Some(e) = item.expr() {
            walk_expr(e, f);
        }
    }
    for twj in &query.from {
        walk_table_factor(&twj.relation, f);
        for j in &twj.joins {
            walk_table_factor(&j.relation, f);
            if let Some(c) = &j.constraint {
                walk_expr(c, f);
            }
        }
    }
    if let Some(s) = &query.selection {
        walk_expr(s, f);
    }
    for g in &query.group_by {
        walk_expr(g, f);
    }
    if let Some(h) = &query.having {
        walk_expr(h, f);
    }
    for o in &query.order_by {
        walk_expr(&o.expr, f);
    }
}

fn walk_table_factor(tf: &TableFactor, f: &mut dyn FnMut(&Expr)) {
    if let TableFactor::Derived { subquery, .. } = tf {
        walk_query(subquery, f);
    }
}

/// Collects every base-table name referenced anywhere in the query,
/// including inside derived tables and scalar subqueries in predicates.
pub fn collect_base_tables(query: &Query) -> Vec<ObjectName> {
    let mut out = Vec::new();
    collect_base_tables_inner(query, &mut out);
    out
}

fn collect_base_tables_inner(query: &Query, out: &mut Vec<ObjectName>) {
    for twj in &query.from {
        collect_from_factor(&twj.relation, out);
        for j in &twj.joins {
            collect_from_factor(&j.relation, out);
        }
    }
    let mut subqueries = Vec::new();
    walk_query(query, &mut |e| {
        if let Expr::ScalarSubquery(q)
        | Expr::InSubquery { subquery: q, .. }
        | Expr::Exists { subquery: q, .. } = e
        {
            subqueries.push((**q).clone());
        }
    });
    for q in subqueries {
        collect_base_tables_inner(&q, out);
    }
}

fn collect_from_factor(tf: &TableFactor, out: &mut Vec<ObjectName>) {
    match tf {
        TableFactor::Table { name, .. } => {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
        TableFactor::Derived { subquery, .. } => collect_base_tables_inner(subquery, out),
    }
}

/// Rebuilds an expression bottom-up, applying `f` to every node after its
/// children have been transformed.
pub fn transform_expr(expr: Expr, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match expr {
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(transform_expr(*left, f)),
            op,
            right: Box::new(transform_expr(*right, f)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op,
            expr: Box::new(transform_expr(*expr, f)),
        },
        Expr::Function(mut fc) => {
            fc.args = fc.args.into_iter().map(|a| transform_expr(a, f)).collect();
            if let Some(w) = fc.over.take() {
                fc.over = Some(WindowSpec {
                    partition_by: w
                        .partition_by
                        .into_iter()
                        .map(|e| transform_expr(e, f))
                        .collect(),
                    order_by: w
                        .order_by
                        .into_iter()
                        .map(|o| OrderByItem {
                            expr: transform_expr(o.expr, f),
                            asc: o.asc,
                        })
                        .collect(),
                });
            }
            Expr::Function(fc)
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(transform_expr(*o, f))),
            when_then: when_then
                .into_iter()
                .map(|(w, t)| (transform_expr(w, f), transform_expr(t, f)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(transform_expr(*e, f))),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(transform_expr(*expr, f)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(transform_expr(*expr, f)),
            list: list.into_iter().map(|e| transform_expr(e, f)).collect(),
            negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(transform_expr(*expr, f)),
            subquery,
            negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(transform_expr(*expr, f)),
            low: Box::new(transform_expr(*low, f)),
            high: Box::new(transform_expr(*high, f)),
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(transform_expr(*expr, f)),
            pattern: Box::new(transform_expr(*pattern, f)),
            negated,
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(transform_expr(*expr, f)),
            data_type,
        },
        Expr::Nested(e) => Expr::Nested(Box::new(transform_expr(*e, f))),
        other => other,
    };
    f(rebuilt)
}

/// Rewrites every base-table reference in the query's FROM clauses (including
/// derived tables, recursively) through `f`, which maps a table name and its
/// current alias to an optional replacement table factor.
pub fn transform_query_tables(
    query: &mut Query,
    f: &mut dyn FnMut(&ObjectName, Option<&str>) -> Option<TableFactor>,
) {
    for twj in &mut query.from {
        transform_factor(&mut twj.relation, f);
        for j in &mut twj.joins {
            transform_factor(&mut j.relation, f);
        }
    }
}

fn transform_factor(
    tf: &mut TableFactor,
    f: &mut dyn FnMut(&ObjectName, Option<&str>) -> Option<TableFactor>,
) {
    match tf {
        TableFactor::Table { name, alias } => {
            if let Some(replacement) = f(name, alias.as_deref()) {
                *tf = replacement;
            }
        }
        TableFactor::Derived { subquery, .. } => transform_query_tables(subquery, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn query_of(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => *q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn collects_base_tables_from_joins_and_subqueries() {
        let q = query_of(
            "SELECT * FROM orders o JOIN order_products p ON o.order_id = p.order_id \
             WHERE price > (SELECT avg(price) FROM products)",
        );
        let tables = collect_base_tables(&q);
        let keys: Vec<String> = tables.iter().map(|t| t.key()).collect();
        assert_eq!(keys, vec!["orders", "order_products", "products"]);
    }

    #[test]
    fn collects_tables_inside_derived_tables() {
        let q = query_of("SELECT avg(s) FROM (SELECT sum(x) AS s FROM lineitem GROUP BY k) t");
        let tables = collect_base_tables(&q);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].key(), "lineitem");
    }

    #[test]
    fn transform_replaces_table_names() {
        let mut q =
            query_of("SELECT count(*) FROM orders AS o JOIN products ON o.pid = products.pid");
        transform_query_tables(&mut q, &mut |name, alias| {
            if name.key() == "orders" {
                Some(TableFactor::Table {
                    name: ObjectName::bare("orders_sample"),
                    alias: alias.map(|s| s.to_string()),
                })
            } else {
                None
            }
        });
        let tables = collect_base_tables(&q);
        let keys: Vec<String> = tables.iter().map(|t| t.key()).collect();
        assert!(keys.contains(&"orders_sample".to_string()));
        assert!(keys.contains(&"products".to_string()));
        assert!(!keys.contains(&"orders".to_string()));
    }

    #[test]
    fn transform_expr_rewrites_columns() {
        let e = Expr::binary(Expr::col("price"), BinaryOp::Gt, Expr::int(10));
        let out = transform_expr(e, &mut |node| match node {
            Expr::Column { table: None, name } if name == "price" => Expr::qcol("s", "price"),
            other => other,
        });
        assert_eq!(
            out,
            Expr::binary(Expr::qcol("s", "price"), BinaryOp::Gt, Expr::int(10))
        );
    }
}
