//! Byte-level codec for schemas and column segments.
//!
//! Encoding is deliberately simple and bit-exact: `Float64` values travel as
//! their raw IEEE-754 bits (`f64::to_bits`), so a value read back from disk
//! compares bitwise-equal to the value that was written — the property the
//! restart-durability acceptance test depends on.  Null bitmaps are stored
//! as their LSB-first `u64` words.
//!
//! All decode paths go through [`ByteReader`], which turns any truncation or
//! impossible length into a typed corruption error instead of panicking.

use crate::error::{StoreError, StoreResult};
use verdict_engine::{Bitmap, Column, ColumnData, DataType, Field, Schema};

/// Growable little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked little-endian byte source.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    file: String,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf`; `file` names the source for corruption errors.
    pub fn new(buf: &'a [u8], file: &str) -> ByteReader<'a> {
        ByteReader {
            buf,
            pos: 0,
            file: file.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::corruption(
                &self.file,
                format!(
                    "truncated record: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> StoreResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corruption(&self.file, "string is not valid utf-8"))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        self.take(n)
    }
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn tag_type(tag: u8, file: &str) -> StoreResult<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        t => Err(StoreError::corruption(
            file,
            format!("unknown type tag {t}"),
        )),
    }
}

/// Encodes a schema (field names, qualifiers, and types).
pub fn encode_schema(schema: &Schema, w: &mut ByteWriter) {
    w.put_u32(schema.len() as u32);
    for field in &schema.fields {
        w.put_str(&field.name);
        match &field.qualifier {
            Some(q) => {
                w.put_u8(1);
                w.put_str(q);
            }
            None => w.put_u8(0),
        }
        w.put_u8(type_tag(field.data_type));
    }
}

/// Decodes a schema written by [`encode_schema`].
pub fn decode_schema(r: &mut ByteReader<'_>, file: &str) -> StoreResult<Schema> {
    let ncols = r.get_u32()? as usize;
    if ncols > 100_000 {
        return Err(StoreError::corruption(
            file,
            format!("schema declares {ncols} columns"),
        ));
    }
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.get_str()?;
        let qualifier = if r.get_u8()? == 1 {
            Some(r.get_str()?)
        } else {
            None
        };
        let data_type = tag_type(r.get_u8()?, file)?;
        let mut field = Field::new(&name, data_type);
        field.qualifier = qualifier;
        fields.push(field);
    }
    Ok(Schema::new(fields))
}

/// Encodes one column segment: type tag, row count, optional null bitmap,
/// then the raw values.
pub fn encode_column(col: &Column, w: &mut ByteWriter) {
    w.put_u8(type_tag(col.data_type()));
    let nrows = col.data().len();
    w.put_u32(nrows as u32);
    match col.validity() {
        Some(bitmap) => {
            w.put_u8(1);
            for word in bitmap.words() {
                w.put_u64(*word);
            }
        }
        None => w.put_u8(0),
    }
    match col.data() {
        ColumnData::Int64(vals) => {
            for v in vals {
                w.put_u64(*v as u64);
            }
        }
        ColumnData::Float64(vals) => {
            for v in vals {
                w.put_u64(v.to_bits());
            }
        }
        ColumnData::Utf8(vals) => {
            for v in vals {
                w.put_str(v);
            }
        }
        ColumnData::Bool(vals) => {
            for v in vals {
                w.put_u8(u8::from(*v));
            }
        }
    }
}

/// Decodes one column segment written by [`encode_column`].
pub fn decode_column(r: &mut ByteReader<'_>, file: &str) -> StoreResult<Column> {
    let dt = tag_type(r.get_u8()?, file)?;
    let nrows = r.get_u32()? as usize;
    let has_validity = r.get_u8()?;
    let validity = match has_validity {
        0 => None,
        1 => {
            let nwords = nrows.div_ceil(64);
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.get_u64()?);
            }
            let mut bitmap = Bitmap::new_null(nrows);
            for (i, word) in words.iter().enumerate() {
                let mut w = *word;
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    let idx = i * 64 + bit;
                    if idx >= nrows {
                        return Err(StoreError::corruption(
                            file,
                            format!("validity bit {idx} set beyond {nrows} rows"),
                        ));
                    }
                    bitmap.set(idx);
                    w &= w - 1;
                }
            }
            Some(bitmap)
        }
        v => {
            return Err(StoreError::corruption(
                file,
                format!("invalid validity marker {v}"),
            ));
        }
    };
    let data = match dt {
        DataType::Int => {
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                vals.push(r.get_u64()? as i64);
            }
            ColumnData::Int64(vals)
        }
        DataType::Float => {
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                vals.push(f64::from_bits(r.get_u64()?));
            }
            ColumnData::Float64(vals)
        }
        DataType::Str => {
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                vals.push(r.get_str()?);
            }
            ColumnData::Utf8(vals)
        }
        DataType::Bool => {
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                vals.push(r.get_u8()? != 0);
            }
            ColumnData::Bool(vals)
        }
    };
    Ok(Column::from_parts(data, validity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_engine::Value;

    fn roundtrip(col: &Column) -> Column {
        let mut w = ByteWriter::new();
        encode_column(col, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "t");
        let back = decode_column(&mut r, "t").unwrap();
        assert_eq!(r.remaining(), 0);
        back
    }

    #[test]
    fn int_column_roundtrip() {
        let col = Column::from_parts(ColumnData::Int64(vec![1, -7, i64::MAX, i64::MIN]), None);
        let back = roundtrip(&col);
        for i in 0..4 {
            assert_eq!(back.value_at(i), col.value_at(i));
        }
    }

    #[test]
    fn float_column_roundtrip_is_bit_exact() {
        let vals = vec![0.1 + 0.2, -0.0, f64::MIN_POSITIVE, 1e308, f64::NAN];
        let col = Column::from_parts(ColumnData::Float64(vals.clone()), None);
        let back = roundtrip(&col);
        match back.data() {
            ColumnData::Float64(got) => {
                for (g, v) in got.iter().zip(&vals) {
                    assert_eq!(g.to_bits(), v.to_bits());
                }
            }
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn nullable_string_column_roundtrip() {
        let mut bitmap = Bitmap::new_null(3);
        bitmap.set(0);
        bitmap.set(2);
        let col = Column::from_parts(
            ColumnData::Utf8(vec!["a".into(), String::new(), "héllo".into()]),
            Some(bitmap),
        );
        let back = roundtrip(&col);
        assert_eq!(back.null_count(), 1);
        assert_eq!(back.value_at(0), Value::Str("a".into()));
        assert_eq!(back.value_at(1), Value::Null);
        assert_eq!(back.value_at(2), Value::Str("héllo".into()));
    }

    #[test]
    fn bool_and_empty_columns_roundtrip() {
        let col = Column::from_parts(ColumnData::Bool(vec![true, false, true]), None);
        let back = roundtrip(&col);
        assert_eq!(back.value_at(2), Value::Bool(true));
        let empty = Column::new_empty(DataType::Str);
        let back = roundtrip(&empty);
        assert_eq!(back.data().len(), 0);
    }

    #[test]
    fn schema_roundtrip_preserves_qualifiers() {
        let mut f1 = Field::new("id", DataType::Int);
        f1.qualifier = Some("s".into());
        let schema = Schema::new(vec![f1, Field::new("price", DataType::Float)]);
        let mut w = ByteWriter::new();
        encode_schema(&schema, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "t");
        let back = decode_schema(&mut r, "t").unwrap();
        assert_eq!(back.fields.len(), 2);
        assert_eq!(back.fields[0].qualifier.as_deref(), Some("s"));
        assert_eq!(back.fields[1].name, "price");
        assert_eq!(back.fields[1].data_type, DataType::Float);
    }

    #[test]
    fn truncated_column_is_corruption() {
        let col = Column::from_parts(ColumnData::Int64(vec![1, 2, 3]), None);
        let mut w = ByteWriter::new();
        encode_column(&col, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 4], "t");
        assert!(decode_column(&mut r, "t").unwrap_err().is_corruption());
    }
}
