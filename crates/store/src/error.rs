//! Typed storage errors.
//!
//! The important split is between [`StoreError::Io`] (the operating system
//! failed us — retryable, environmental) and [`StoreError::Corruption`] (the
//! bytes on disk are not what we wrote — a torn page, a flipped bit, a
//! truncated file).  Corruption is always detected by checksum or structural
//! validation and surfaced as a typed error; the store never panics on bad
//! bytes and never silently serves them.

use std::fmt;

/// An error raised by the persistent store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, fsync, ...).
    Io(std::io::Error),
    /// On-disk bytes failed checksum or structural validation.
    Corruption {
        /// The file the corruption was detected in.
        file: String,
        /// What exactly failed to validate.
        detail: String,
    },
    /// The named table is not present in the store.
    NotFound(String),
    /// A table key contains characters that cannot name a store file.
    InvalidName(String),
    /// The scanned table was replaced or removed while a scan was open.
    ScanInvalidated(String),
}

impl StoreError {
    /// Constructs a corruption error for `file`.
    pub fn corruption(file: &str, detail: impl Into<String>) -> StoreError {
        StoreError::Corruption {
            file: file.to_string(),
            detail: detail.into(),
        }
    }

    /// True when this error reports on-disk corruption (rather than an
    /// environmental I/O failure or a missing table).
    pub fn is_corruption(&self) -> bool {
        matches!(self, StoreError::Corruption { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corruption { file, detail } => {
                write!(f, "store corruption in {file}: {detail}")
            }
            StoreError::NotFound(t) => write!(f, "table not persisted: {t}"),
            StoreError::InvalidName(t) => write!(f, "invalid store table name: {t}"),
            StoreError::ScanInvalidated(t) => {
                write!(f, "scan invalidated: {t} was replaced while being read")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias used throughout the store.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_typed_and_displayed() {
        let e = StoreError::corruption("t.tbl", "page 3 checksum mismatch");
        assert!(e.is_corruption());
        let s = e.to_string();
        assert!(s.contains("t.tbl") && s.contains("page 3"));
        assert!(!StoreError::NotFound("x".into()).is_corruption());
    }
}
