//! # verdict-store
//!
//! Persistent scramble storage for VerdictDB-rs: an append-friendly paged
//! **columnar block file** per table plus a **redo-only write-ahead log**
//! shared by the whole store directory.
//!
//! The design goals, in order:
//!
//! 1. **Crash safety.** Every mutation — `CREATE SCRAMBLE`, a `REFRESH`
//!    append batch, a full rebuild, a drop — commits atomically through the
//!    WAL ([`wal`]): full page images are logged and fsynced *before* any
//!    data file is touched, so a crash at any instant leaves each table
//!    either fully old or fully new.  Recovery on open replays committed
//!    transactions and discards torn tails.
//! 2. **Integrity.** Every 8 KiB page carries an FNV-1a 64 checksum
//!    ([`page`]).  Torn writes, truncation, and bit flips surface as typed
//!    [`StoreError::Corruption`] errors — never a panic, never a silently
//!    wrong answer.
//! 3. **Streaming reads.** Rows are grouped into blocks sized to the
//!    engine's morsel ([`store::BLOCK_ROWS`]), each column a contiguous
//!    page-aligned segment, so the progressive executor's `BlockScan` can
//!    stream a scramble straight off disk one block at a time via
//!    [`StoreScan`] — including column-projected reads that touch only the
//!    filter columns' pages.
//! 4. **Bit-exactness.** `f64` values are stored as raw IEEE-754 bits, so a
//!    reloaded scramble answers queries bit-identically to the one that was
//!    built in memory — the restart-durability guarantee the server depends
//!    on.
//!
//! The crate deliberately uses only `std` (plus the workspace's existing
//! `parking_lot`): no serialization frameworks, no database libraries.
//! [`Store`] implements the engine's `StoreHandle` trait, which is how the
//! catalog lazily reloads persisted scrambles on cold start.

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod page;
pub mod scan;
pub mod store;
pub mod tablefile;
pub mod wal;

pub use error::{StoreError, StoreResult};
pub use scan::StoreScan;
pub use store::{Store, StoreStats, BLOCK_ROWS};
