//! Fixed-size checksummed pages — the unit of both table-file layout and
//! WAL page images.
//!
//! Every page is [`PAGE_SIZE`] bytes at offset `page_no * PAGE_SIZE`:
//!
//! ```text
//! [ payload_len: u32 LE ][ checksum: u64 LE ][ payload ][ zero padding ]
//! ```
//!
//! The checksum is FNV-1a 64 over the payload bytes.  A page that was never
//! written (all zeroes), a torn write, or a flipped bit all fail validation
//! — the empty payload hashes to the FNV offset basis, which is nonzero, so
//! even the all-zero page is detected.  Decoding never panics: every
//! malformed shape maps to [`StoreError::Corruption`].

use crate::error::{StoreError, StoreResult};
use std::io::{Read, Seek, SeekFrom};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Bytes of per-page framing (length + checksum).
pub const PAGE_HEADER: usize = 4 + 8;
/// Payload capacity of one page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a payload (at most [`PAGE_PAYLOAD`] bytes) into a full page image.
pub fn encode_page(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= PAGE_PAYLOAD,
        "payload exceeds page capacity"
    );
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[4..12].copy_from_slice(&fnv1a(payload).to_le_bytes());
    page[12..12 + payload.len()].copy_from_slice(payload);
    page
}

/// Validates a raw page image and returns its payload slice.
pub fn decode_page<'a>(page: &'a [u8], file: &str, page_no: u64) -> StoreResult<&'a [u8]> {
    if page.len() != PAGE_SIZE {
        return Err(StoreError::corruption(
            file,
            format!(
                "page {page_no} is {} bytes, expected {PAGE_SIZE}",
                page.len()
            ),
        ));
    }
    let len = u32::from_le_bytes(page[0..4].try_into().unwrap()) as usize;
    if len > PAGE_PAYLOAD {
        return Err(StoreError::corruption(
            file,
            format!("page {page_no} declares payload of {len} bytes"),
        ));
    }
    let checksum = u64::from_le_bytes(page[4..12].try_into().unwrap());
    let payload = &page[12..12 + len];
    if fnv1a(payload) != checksum {
        return Err(StoreError::corruption(
            file,
            format!("page {page_no} checksum mismatch"),
        ));
    }
    Ok(payload)
}

/// Number of pages needed to hold `nbytes` of payload.
pub fn pages_for(nbytes: usize) -> u64 {
    (nbytes.max(1)).div_ceil(PAGE_PAYLOAD) as u64
}

/// Splits a payload into per-page chunks (at least one, possibly empty).
pub fn split_payload(payload: &[u8]) -> Vec<&[u8]> {
    if payload.is_empty() {
        return vec![payload];
    }
    payload.chunks(PAGE_PAYLOAD).collect()
}

/// Reads and validates one page from an open file.
pub fn read_page<F: Read + Seek>(file: &mut F, page_no: u64, name: &str) -> StoreResult<Vec<u8>> {
    let mut buf = vec![0u8; PAGE_SIZE];
    file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
    file.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::corruption(name, format!("page {page_no} truncated"))
        } else {
            StoreError::Io(e)
        }
    })?;
    decode_page(&buf, name, page_no).map(|p| p.to_vec())
}

/// Reads a contiguous page range and concatenates the payloads, truncating
/// the result to `nbytes` (the logical length recorded in the directory).
pub fn read_payload<F: Read + Seek>(
    file: &mut F,
    first_page: u64,
    npages: u64,
    nbytes: usize,
    name: &str,
) -> StoreResult<Vec<u8>> {
    let mut out = Vec::with_capacity(nbytes);
    for p in first_page..first_page + npages {
        out.extend_from_slice(&read_page(file, p, name)?);
    }
    if out.len() < nbytes {
        return Err(StoreError::corruption(
            name,
            format!(
                "pages {first_page}..{} hold {} bytes, directory claims {nbytes}",
                first_page + npages,
                out.len()
            ),
        ));
    }
    out.truncate(nbytes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn page_roundtrip() {
        let payload = vec![7u8; 1000];
        let page = encode_page(&payload);
        assert_eq!(page.len(), PAGE_SIZE);
        assert_eq!(decode_page(&page, "t", 0).unwrap(), &payload[..]);
    }

    #[test]
    fn zero_page_is_detected_as_corrupt() {
        let zero = vec![0u8; PAGE_SIZE];
        let err = decode_page(&zero, "t", 3).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut page = encode_page(b"hello world");
        page[20] ^= 0x40;
        assert!(decode_page(&page, "t", 0).unwrap_err().is_corruption());
    }

    #[test]
    fn oversized_declared_length_is_corrupt_not_panic() {
        let mut page = encode_page(b"x");
        page[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(decode_page(&page, "t", 0).unwrap_err().is_corruption());
    }

    #[test]
    fn truncated_file_reads_as_corruption() {
        let page = encode_page(b"data");
        let mut cur = Cursor::new(page[..100].to_vec());
        let err = read_page(&mut cur, 0, "t").unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn multi_page_payload_roundtrip() {
        let payload: Vec<u8> = (0..3 * PAGE_PAYLOAD + 17)
            .map(|i| (i % 251) as u8)
            .collect();
        let chunks = split_payload(&payload);
        assert_eq!(chunks.len(), 4);
        let mut file = Vec::new();
        for c in &chunks {
            file.extend_from_slice(&encode_page(c));
        }
        let mut cur = Cursor::new(file);
        let back = read_payload(&mut cur, 0, 4, payload.len(), "t").unwrap();
        assert_eq!(back, payload);
    }
}
