//! Streaming block scans over persisted tables.
//!
//! [`StoreScan`] implements the engine's [`ScanSource`] trait, so a
//! progressive `BlockScan` can stream a persisted scramble straight off disk
//! block-by-block without ever materializing the whole table.  The scan pins
//! the table header it was opened against; if the table is replaced or
//! removed mid-scan (a concurrent rebuild), the generation check turns every
//! subsequent read into a typed error rather than silently mixing rows from
//! two generations.

use crate::error::{StoreError, StoreResult};
use crate::store::Counters;
use crate::tablefile::{read_chunk, TableHeader};
use parking_lot::Mutex;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use verdict_engine::{Column, EngineError, EngineResult, ScanSource, Schema, Table};

/// A read-only, header-pinned scan over one persisted table.
#[derive(Debug)]
pub struct StoreScan {
    file: Mutex<File>,
    file_name: String,
    header: TableHeader,
    gen: Arc<AtomicU64>,
    expected_gen: u64,
    stats: Arc<Counters>,
    /// Most recently fully-decoded block — progressive scans revisit the
    /// same block for late materialization, so one slot is enough.
    cache: Mutex<Option<(usize, Vec<Column>)>>,
    block_starts: Vec<usize>,
}

fn to_engine(e: StoreError) -> EngineError {
    EngineError::Execution(format!("store: {e}"))
}

impl StoreScan {
    pub(crate) fn new(
        file: File,
        file_name: String,
        header: TableHeader,
        gen: Arc<AtomicU64>,
        stats: Arc<Counters>,
    ) -> StoreScan {
        let block_starts = header.block_starts();
        let expected_gen = gen.load(Ordering::SeqCst);
        StoreScan {
            file: Mutex::new(file),
            file_name,
            header,
            gen,
            expected_gen,
            stats,
            cache: Mutex::new(None),
            block_starts,
        }
    }

    fn check_generation(&self) -> StoreResult<()> {
        if self.gen.load(Ordering::SeqCst) != self.expected_gen {
            return Err(StoreError::ScanInvalidated(self.file_name.clone()));
        }
        Ok(())
    }

    /// Index of the block containing absolute row `row`.
    fn block_of(&self, row: usize) -> usize {
        // block_starts is ascending with a trailing total_rows sentinel.
        self.block_starts.partition_point(|&s| s <= row) - 1
    }

    /// Decodes (or serves from cache) the columns of one block.  `cols`
    /// selects and orders the output; `None` means all columns.
    fn block_columns(&self, block: usize, cols: Option<&[usize]>) -> StoreResult<Vec<Column>> {
        {
            let cache = self.cache.lock();
            if let Some((cached_block, all)) = cache.as_ref() {
                if *cached_block == block {
                    return Ok(match cols {
                        None => all.clone(),
                        Some(idx) => idx.iter().map(|&c| all[c].clone()).collect(),
                    });
                }
            }
        }
        let dir = &self.header.blocks[block];
        let mut pages = 0u64;
        let result = {
            let mut file = self.file.lock();
            match cols {
                None => {
                    let all: Vec<Column> = dir
                        .chunks
                        .iter()
                        .map(|c| read_chunk(&mut *file, c, &self.file_name, &mut pages))
                        .collect::<StoreResult<_>>()?;
                    *self.cache.lock() = Some((block, all.clone()));
                    all
                }
                Some(idx) => idx
                    .iter()
                    .map(|&ci| read_chunk(&mut *file, &dir.chunks[ci], &self.file_name, &mut pages))
                    .collect::<StoreResult<_>>()?,
            }
        };
        self.stats.pages_read(pages);
        Ok(result)
    }

    fn read_range_inner(
        &self,
        cols: Option<&[usize]>,
        start: usize,
        len: usize,
    ) -> StoreResult<Vec<Column>> {
        self.check_generation()?;
        let ncols = match cols {
            Some(idx) => idx.len(),
            None => self.header.schema.len(),
        };
        let dtype = |out: usize| match cols {
            Some(idx) => self.header.schema.fields[idx[out]].data_type,
            None => self.header.schema.fields[out].data_type,
        };
        let mut out: Vec<Column> = (0..ncols).map(|i| Column::new_empty(dtype(i))).collect();
        if len == 0 {
            return Ok(out);
        }
        let end = start + len;
        let mut block = self.block_of(start);
        let mut row = start;
        while row < end {
            let block_start = self.block_starts[block];
            let block_end = self.block_starts[block + 1];
            let lo = row - block_start;
            let take = (end.min(block_end)) - row;
            let decoded = self.block_columns(block, cols)?;
            for (acc, col) in out.iter_mut().zip(&decoded) {
                acc.append(&col.slice(lo, take));
            }
            row += take;
            block += 1;
        }
        Ok(out)
    }

    fn gather_inner(&self, rows: &[usize]) -> StoreResult<Vec<Column>> {
        self.check_generation()?;
        let schema = &self.header.schema;
        let mut out: Vec<Column> = schema
            .fields
            .iter()
            .map(|f| Column::new_empty(f.data_type))
            .collect();
        let mut i = 0;
        while i < rows.len() {
            let block = self.block_of(rows[i]);
            let block_start = self.block_starts[block];
            let block_end = self.block_starts[block + 1];
            let mut rel = Vec::new();
            while i < rows.len() && rows[i] >= block_start && rows[i] < block_end {
                rel.push(rows[i] - block_start);
                i += 1;
            }
            let decoded = self.block_columns(block, None)?;
            for (acc, col) in out.iter_mut().zip(&decoded) {
                acc.append(&col.take(&rel));
            }
        }
        Ok(out)
    }

    /// Materializes the whole table plus its persisted version.
    pub fn materialize(&self) -> StoreResult<(Table, u64)> {
        let cols = self.read_range_inner(None, 0, self.header.total_rows as usize)?;
        let table = Table::new(self.header.schema.clone(), cols).map_err(|e| {
            StoreError::corruption(&self.file_name, format!("decoded table invalid: {e}"))
        })?;
        Ok((table, self.header.version))
    }
}

impl ScanSource for StoreScan {
    fn schema(&self) -> &Schema {
        &self.header.schema
    }

    fn num_rows(&self) -> usize {
        self.header.total_rows as usize
    }

    fn read_range(
        &self,
        cols: Option<&[usize]>,
        start: usize,
        len: usize,
    ) -> EngineResult<Vec<Column>> {
        if start + len > self.header.total_rows as usize {
            return Err(EngineError::Execution(format!(
                "store scan range {start}..{} out of bounds for {} rows",
                start + len,
                self.header.total_rows
            )));
        }
        self.read_range_inner(cols, start, len).map_err(to_engine)
    }

    fn gather(&self, rows: &[usize]) -> EngineResult<Vec<Column>> {
        if let Some(&max) = rows.iter().max() {
            if max >= self.header.total_rows as usize {
                return Err(EngineError::Execution(format!(
                    "store scan row {max} out of bounds for {} rows",
                    self.header.total_rows
                )));
            }
        }
        self.gather_inner(rows).map_err(to_engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use std::path::PathBuf;
    use verdict_engine::TableBuilder;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verdict_scan_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table(n: usize) -> Table {
        TableBuilder::new()
            .int_column("id", (0..n as i64).collect())
            .float_column("u", (0..n).map(|i| (i as f64 * 0.731) % 1.0).collect())
            .str_column("tag", (0..n).map(|i| format!("g{}", i % 7)).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn scan_reads_ranges_across_blocks() {
        let dir = tempdir("range");
        let store = Store::open(&dir).unwrap();
        let table = sample_table(70_000);
        store.save_table("t", &table, 1).unwrap();
        let scan = store.open_store_scan("t").unwrap();
        assert_eq!(scan.num_rows(), 70_000);
        // A range straddling the 65_536-row block boundary.
        let cols = scan.read_range(None, 65_000, 1_000).unwrap();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].data().len(), 1_000);
        for i in 0..1_000 {
            assert_eq!(cols[0].value_at(i), table.value(65_000 + i, 0));
        }
        // Projected read in scrambled order.
        let cols = scan.read_range(Some(&[2, 0]), 10, 5).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1].value_at(0), table.value(10, 0));
        assert_eq!(cols[0].value_at(4), table.value(14, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_gathers_rows_across_blocks() {
        let dir = tempdir("gather");
        let store = Store::open(&dir).unwrap();
        let table = sample_table(70_000);
        store.save_table("t", &table, 1).unwrap();
        let scan = store.open_store_scan("t").unwrap();
        let rows = vec![0usize, 3, 65_535, 65_536, 69_999];
        let cols = scan.gather(&rows).unwrap();
        assert_eq!(cols[0].data().len(), rows.len());
        for (out, &r) in rows.iter().enumerate() {
            assert_eq!(cols[0].value_at(out), table.value(r, 0));
            assert_eq!(cols[1].value_at(out), table.value(r, 1));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_is_invalidated_by_replace() {
        let dir = tempdir("invalidate");
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &sample_table(100), 1).unwrap();
        let scan = store.open_store_scan("t").unwrap();
        assert!(scan.read_range(None, 0, 10).is_ok());
        store.save_table("t", &sample_table(200), 2).unwrap();
        let err = scan.read_range(None, 0, 10).unwrap_err();
        assert!(err.to_string().contains("scan invalidated"), "{err}");
        // A fresh scan sees the new generation.
        let scan2 = store.open_store_scan("t").unwrap();
        assert_eq!(scan2.num_rows(), 200);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_survives_append() {
        let dir = tempdir("appendscan");
        let store = Store::open(&dir).unwrap();
        let table = sample_table(100);
        store.save_table("t", &table, 1).unwrap();
        let scan = store.open_store_scan("t").unwrap();
        store.append_rows("t", &sample_table(50), 2).unwrap();
        // The old scan still reads its pinned 100-row generation.
        assert_eq!(scan.num_rows(), 100);
        let cols = scan.read_range(None, 90, 10).unwrap();
        assert_eq!(cols[0].value_at(9), table.value(99, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_bounds_reads_are_errors() {
        let dir = tempdir("oob");
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &sample_table(10), 1).unwrap();
        let scan = store.open_store_scan("t").unwrap();
        assert!(scan.read_range(None, 5, 10).is_err());
        assert!(scan.gather(&[10]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
