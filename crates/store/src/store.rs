//! The store itself: a directory of table files plus one WAL.
//!
//! All mutations are single-writer (serialized by an internal mutex) and
//! flow through [`crate::wal`], so every `save`/`append`/`remove` is atomic
//! and durable.  Reads either materialize a whole table ([`Store::load_table`])
//! or stream it block-at-a-time through [`crate::scan::StoreScan`].
//!
//! Besides tables, the store keeps small named blobs (`<key>.blob`) with the
//! same WAL protection — the middleware uses one to persist scramble
//! metadata atomically alongside the scramble bytes.

use crate::error::{StoreError, StoreResult};
use crate::page::{encode_page, pages_for, read_payload, split_payload};
use crate::scan::StoreScan;
use crate::tablefile::{build_append, build_full, read_header, table_file_name, TableHeader};
use crate::wal::{Wal, WalOp};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use verdict_engine::{EngineError, EngineResult, ScanSource, StoreHandle, Table};

/// Magic prefix of blob files.
pub const BLOB_MAGIC: &[u8; 8] = b"VDBBLOB1";

/// Rows per block in newly written table files.  Matches the engine's morsel
/// size so progressive `BlockScan` streams whole blocks straight off disk.
pub const BLOCK_ROWS: u32 = verdict_engine::MORSEL_ROWS as u32;

/// Shared atomic counters surfaced by `SHOW STATS`.
#[derive(Debug, Default)]
pub struct Counters {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    wal_records: AtomicU64,
    wal_syncs: AtomicU64,
    recoveries: AtomicU64,
    checkpoints: AtomicU64,
}

impl Counters {
    /// Records one data page read (and checksum-verified).
    pub fn page_read(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` data page reads.
    pub fn pages_read(&self, n: u64) {
        self.pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one data page written.
    pub fn page_written(&self) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one durable WAL sync covering `records` log records.
    pub fn wal_synced(&self, records: u64) {
        self.wal_records.fetch_add(records, Ordering::Relaxed);
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a recovery replay that applied at least one transaction.
    pub fn recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a checkpoint (WAL truncation after apply).
    pub fn checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time snapshot of store activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Data pages read and checksum-verified.
    pub pages_read: u64,
    /// Data pages written through the WAL.
    pub pages_written: u64,
    /// WAL records made durable.
    pub wal_records: u64,
    /// WAL fsync calls.
    pub wal_syncs: u64,
    /// Recovery replays that applied at least one committed transaction.
    pub recoveries: u64,
    /// WAL checkpoints (truncations after apply).
    pub checkpoints: u64,
}

#[derive(Debug)]
struct TableEntry {
    header: TableHeader,
    /// Bumped whenever the table is replaced or removed; open scans snapshot
    /// the value and refuse to read once it moves.
    replace_gen: Arc<AtomicU64>,
}

#[derive(Debug)]
struct Inner {
    wal: Wal,
    tables: BTreeMap<String, TableEntry>,
}

/// A crash-safe on-disk store of columnar tables and small blobs.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
    stats: Arc<Counters>,
}

fn validate_key(key: &str) -> StoreResult<()> {
    let ok = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidName(key.to_string()))
    }
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.  Runs WAL
    /// recovery first, then loads every table header.  A corrupt header is a
    /// typed error, not a panic.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let stats = Arc::new(Counters::default());
        let (wal, _touched) = Wal::open(&dir, stats.clone())?;

        let mut tables = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(key) = name.strip_suffix(".tbl") {
                let mut f = File::open(entry.path())?;
                let header = read_header(&mut f, &name)?;
                tables.insert(
                    key.to_string(),
                    TableEntry {
                        header,
                        replace_gen: Arc::new(AtomicU64::new(0)),
                    },
                );
            }
        }
        Ok(Store {
            dir,
            inner: Mutex::new(Inner { wal, tables }),
            stats,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Writes (or atomically replaces) a table under `key` at `version`.
    pub fn save_table(&self, key: &str, table: &Table, version: u64) -> StoreResult<()> {
        validate_key(key)?;
        let (header, ops) = build_full(key, table, version, BLOCK_ROWS);
        let mut inner = self.inner.lock();
        inner.wal.commit(&ops)?;
        if let Some(old) = inner.tables.remove(key) {
            old.replace_gen.fetch_add(1, Ordering::SeqCst);
        }
        inner.tables.insert(
            key.to_string(),
            TableEntry {
                header,
                replace_gen: Arc::new(AtomicU64::new(0)),
            },
        );
        Ok(())
    }

    /// Appends `rows` to the table under `key`, bumping its version.  Falls
    /// back to a full rewrite if the block directory outgrows the header
    /// reservation.
    pub fn append_rows(&self, key: &str, rows: &Table, version: u64) -> StoreResult<()> {
        validate_key(key)?;
        let mut inner = self.inner.lock();
        let entry = inner
            .tables
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        let mut current = entry.header.clone();
        current.version = version;
        match build_append(key, &current, rows) {
            Some((header, ops)) => {
                inner.wal.commit(&ops)?;
                // Appends leave existing data pages untouched, so open scans
                // stay valid: the generation is NOT bumped.
                inner.tables.get_mut(key).expect("held lock").header = header;
                Ok(())
            }
            None => {
                // Directory overflow: load, append in memory, full rewrite.
                drop(inner);
                let (mut table, _) = self.load_table(key)?;
                table.append(rows).map_err(|e| {
                    StoreError::corruption(
                        &table_file_name(key),
                        format!("append schema mismatch: {e}"),
                    )
                })?;
                self.save_table(key, &table, version)
            }
        }
    }

    /// Removes the table under `key`.  Removing a missing table is an error.
    pub fn remove_table(&self, key: &str) -> StoreResult<()> {
        validate_key(key)?;
        let mut inner = self.inner.lock();
        let entry = inner
            .tables
            .remove(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        inner.wal.commit(&[WalOp::Remove {
            file: table_file_name(key),
        }])?;
        entry.replace_gen.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Materializes the whole table under `key`, returning it with its
    /// persisted data version.
    pub fn load_table(&self, key: &str) -> StoreResult<(Table, u64)> {
        let scan = self.open_store_scan(key)?;
        scan.materialize()
    }

    /// True when `key` is persisted.
    pub fn contains_table(&self, key: &str) -> bool {
        self.inner.lock().tables.contains_key(key)
    }

    /// Row count of `key` from the header alone (no data pages touched).
    pub fn table_row_count(&self, key: &str) -> Option<u64> {
        self.inner
            .lock()
            .tables
            .get(key)
            .map(|e| e.header.total_rows)
    }

    /// Persisted data version of `key`.
    pub fn table_version(&self, key: &str) -> Option<u64> {
        self.inner.lock().tables.get(key).map(|e| e.header.version)
    }

    /// Sorted list of persisted table keys.
    pub fn tables(&self) -> Vec<String> {
        self.inner.lock().tables.keys().cloned().collect()
    }

    /// Opens a streaming block scan over `key`.  The scan pins the current
    /// header; if the table is replaced or removed mid-scan, subsequent
    /// reads fail with a typed invalidation error instead of mixing
    /// generations.
    pub fn open_store_scan(&self, key: &str) -> StoreResult<StoreScan> {
        let inner = self.inner.lock();
        let entry = inner
            .tables
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        let header = entry.header.clone();
        let gen = entry.replace_gen.clone();
        drop(inner);
        let file_name = table_file_name(key);
        let file = File::open(self.dir.join(&file_name))?;
        Ok(StoreScan::new(
            file,
            file_name,
            header,
            gen,
            self.stats.clone(),
        ))
    }

    /// Writes (or atomically replaces) a named blob.
    pub fn put_blob(&self, key: &str, bytes: &[u8]) -> StoreResult<()> {
        validate_key(key)?;
        let file = format!("{key}.blob");
        let mut head = Vec::with_capacity(16);
        head.extend_from_slice(BLOB_MAGIC);
        head.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        let mut ops = vec![
            WalOp::Remove { file: file.clone() },
            WalOp::Page {
                file: file.clone(),
                page_no: 0,
                image: encode_page(&head),
            },
        ];
        for (i, chunk) in split_payload(bytes).iter().enumerate() {
            ops.push(WalOp::Page {
                file: file.clone(),
                page_no: 1 + i as u64,
                image: encode_page(chunk),
            });
        }
        self.inner.lock().wal.commit(&ops)
    }

    /// Reads a named blob, or `None` if it was never written.
    pub fn get_blob(&self, key: &str) -> StoreResult<Option<Vec<u8>>> {
        validate_key(key)?;
        let file = format!("{key}.blob");
        let path = self.dir.join(&file);
        let mut f = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let head = crate::page::read_page(&mut f, 0, &file)?;
        if head.len() < 16 || &head[0..8] != BLOB_MAGIC {
            return Err(StoreError::corruption(&file, "bad blob magic"));
        }
        let len = u64::from_le_bytes(head[8..16].try_into().unwrap()) as usize;
        let npages = pages_for(len);
        let bytes = read_payload(&mut f, 1, npages, len, &file)?;
        self.stats.pages_read(npages + 1);
        Ok(Some(bytes))
    }
}

fn map_err(e: StoreError) -> EngineError {
    match e {
        StoreError::NotFound(t) => EngineError::TableNotFound(t),
        other => EngineError::Execution(format!("store: {other}")),
    }
}

impl StoreHandle for Store {
    fn contains(&self, key: &str) -> bool {
        self.contains_table(key)
    }

    fn table_names(&self) -> Vec<String> {
        self.tables()
    }

    fn row_count(&self, key: &str) -> Option<u64> {
        self.table_row_count(key)
    }

    fn version(&self, key: &str) -> Option<u64> {
        self.table_version(key)
    }

    fn load(&self, key: &str) -> EngineResult<(Table, u64)> {
        self.load_table(key).map_err(map_err)
    }

    fn save(&self, key: &str, table: &Table, version: u64) -> EngineResult<()> {
        self.save_table(key, table, version).map_err(map_err)
    }

    fn append(&self, key: &str, rows: &Table, version: u64) -> EngineResult<()> {
        self.append_rows(key, rows, version).map_err(map_err)
    }

    fn remove(&self, key: &str) -> EngineResult<()> {
        self.remove_table(key).map_err(map_err)
    }

    fn open_scan(&self, key: &str) -> EngineResult<Arc<dyn ScanSource>> {
        self.open_store_scan(key)
            .map(|s| Arc::new(s) as Arc<dyn ScanSource>)
            .map_err(map_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_engine::TableBuilder;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verdict_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table(n: usize) -> Table {
        TableBuilder::new()
            .int_column("id", (0..n as i64).collect())
            .float_column("u", (0..n).map(|i| (i as f64 * 0.137) % 1.0).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn save_close_reopen_load_is_bit_identical() {
        let dir = tempdir("reopen");
        let table = sample_table(70_000); // spans two MORSEL_ROWS blocks
        {
            let store = Store::open(&dir).unwrap();
            store.save_table("sales_scramble", &table, 42).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert!(store.contains_table("sales_scramble"));
        assert_eq!(store.table_row_count("sales_scramble"), Some(70_000));
        assert_eq!(store.table_version("sales_scramble"), Some(42));
        let (back, version) = store.load_table("sales_scramble").unwrap();
        assert_eq!(version, 42);
        assert_eq!(back.num_rows(), 70_000);
        for i in [0usize, 65_535, 65_536, 69_999] {
            assert_eq!(back.value(i, 0), table.value(i, 0));
            assert_eq!(back.value(i, 1), table.value(i, 1));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_then_reopen_sees_all_rows() {
        let dir = tempdir("append");
        {
            let store = Store::open(&dir).unwrap();
            store.save_table("t", &sample_table(100), 1).unwrap();
            store.append_rows("t", &sample_table(50), 2).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.table_row_count("t"), Some(150));
        assert_eq!(store.table_version("t"), Some(2));
        let (back, _) = store.load_table("t").unwrap();
        assert_eq!(back.num_rows(), 150);
        assert_eq!(back.value(100, 0), back.value(0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_and_missing_table_are_typed() {
        let dir = tempdir("remove");
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &sample_table(10), 1).unwrap();
        store.remove_table("t").unwrap();
        assert!(!store.contains_table("t"));
        assert!(matches!(
            store.load_table("t").unwrap_err(),
            StoreError::NotFound(_)
        ));
        assert!(matches!(
            store.remove_table("t").unwrap_err(),
            StoreError::NotFound(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_keys_are_rejected() {
        let dir = tempdir("badkey");
        let store = Store::open(&dir).unwrap();
        for bad in ["", "Upper", "has space", "../escape", "semi;colon"] {
            assert!(matches!(
                store.save_table(bad, &sample_table(1), 1).unwrap_err(),
                StoreError::InvalidName(_)
            ));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_roundtrip_and_replace() {
        let dir = tempdir("blob");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get_blob("verdict_meta").unwrap(), None);
        let big: Vec<u8> = (0..20_000).map(|i| (i % 255) as u8).collect();
        store.put_blob("verdict_meta", &big).unwrap();
        assert_eq!(store.get_blob("verdict_meta").unwrap().unwrap(), big);
        store.put_blob("verdict_meta", b"small now").unwrap();
        assert_eq!(
            store.get_blob("verdict_meta").unwrap().unwrap(),
            b"small now"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_table_header_fails_open_with_typed_error() {
        let dir = tempdir("corrupthdr");
        {
            let store = Store::open(&dir).unwrap();
            store.save_table("t", &sample_table(10), 1).unwrap();
        }
        // Flip a byte in the header page.
        let path = dir.join("t.tbl");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match Store::open(&dir) {
            Err(e) => assert!(e.is_corruption(), "{e}"),
            Ok(_) => panic!("corrupt header must not open cleanly"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_count_pages_and_syncs() {
        let dir = tempdir("stats");
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &sample_table(1000), 1).unwrap();
        let s = store.stats();
        assert!(s.pages_written > 0);
        assert!(s.wal_records > 0);
        assert!(s.wal_syncs > 0);
        assert!(s.checkpoints > 0);
        let (_, _) = store.load_table("t").unwrap();
        assert!(store.stats().pages_read > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
