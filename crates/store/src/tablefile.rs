//! On-disk layout of one persisted table: `<key>.tbl`.
//!
//! A table file is a sequence of checksummed pages ([`crate::page`]).  The
//! first `header_pages` pages hold the header; data pages follow.
//!
//! Header payload (concatenated across the header pages):
//!
//! ```text
//! magic "VDBSTOR1"  | format: u32 (=1) | page_size: u32 | header_pages: u32
//! data_version: u64 | block_rows: u32  | total_rows: u64
//! schema            | nblocks: u32
//! per block:  rows: u32, then per column: first_page u64, npages u32, nbytes u64
//! ```
//!
//! Rows are grouped into blocks of at most `block_rows` rows (sized to the
//! engine's morsel so progressive `BlockScan` streams block-at-a-time), and
//! each block stores one contiguous *column segment* per column.  Every
//! segment starts on a page boundary, so a scan that only needs the filter
//! columns touches only those columns' pages.
//!
//! The header reserves slack pages (at least double the space it currently
//! needs), so an append — which only adds whole new blocks after the last
//! data page and rewrites the directory — usually never moves data pages.
//! If the directory outgrows the reservation, the caller falls back to a
//! full rewrite.

use crate::codec::{
    decode_column, decode_schema, encode_column, encode_schema, ByteReader, ByteWriter,
};
use crate::error::{StoreError, StoreResult};
use crate::page::{encode_page, pages_for, read_page, split_payload, PAGE_SIZE};
use crate::wal::WalOp;
use std::io::{Read, Seek};
use verdict_engine::{Schema, Table};

/// File-format magic for table files.
pub const TABLE_MAGIC: &[u8; 8] = b"VDBSTOR1";
/// Current table file format version.
pub const FORMAT_VERSION: u32 = 1;

/// Location of one column segment within the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnChunk {
    /// First page of the segment.
    pub first_page: u64,
    /// Number of pages the segment occupies.
    pub npages: u32,
    /// Logical payload length in bytes (excludes page padding).
    pub nbytes: u64,
}

/// Directory entry for one block of rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDir {
    /// Number of rows in this block.
    pub rows: u32,
    /// One chunk per column, in schema order.
    pub chunks: Vec<ColumnChunk>,
}

/// Decoded header of a table file.
#[derive(Debug, Clone, PartialEq)]
pub struct TableHeader {
    /// Catalog data version persisted with the table.
    pub version: u64,
    /// Maximum rows per block.
    pub block_rows: u32,
    /// Total rows across all blocks.
    pub total_rows: u64,
    /// Pages reserved for the header (data pages start here).
    pub header_pages: u32,
    /// Table schema.
    pub schema: Schema,
    /// Block directory.
    pub blocks: Vec<BlockDir>,
}

impl TableHeader {
    /// First page past the last data page (where an append starts writing).
    pub fn end_page(&self) -> u64 {
        let mut end = self.header_pages as u64;
        for block in &self.blocks {
            for chunk in &block.chunks {
                end = end.max(chunk.first_page + chunk.npages as u64);
            }
        }
        end
    }

    /// Cumulative row offsets: `starts[i]` is the absolute row index of the
    /// first row of block `i`, with a final entry equal to `total_rows`.
    pub fn block_starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.blocks.len() + 1);
        let mut acc = 0usize;
        for block in &self.blocks {
            starts.push(acc);
            acc += block.rows as usize;
        }
        starts.push(acc);
        starts
    }
}

/// Data file name for a table key.
pub fn table_file_name(key: &str) -> String {
    format!("{key}.tbl")
}

fn encode_header_payload(header: &TableHeader) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(TABLE_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(PAGE_SIZE as u32);
    w.put_u32(header.header_pages);
    w.put_u64(header.version);
    w.put_u32(header.block_rows);
    w.put_u64(header.total_rows);
    encode_schema(&header.schema, &mut w);
    w.put_u32(header.blocks.len() as u32);
    for block in &header.blocks {
        w.put_u32(block.rows);
        for chunk in &block.chunks {
            w.put_u64(chunk.first_page);
            w.put_u32(chunk.npages);
            w.put_u64(chunk.nbytes);
        }
    }
    w.into_bytes()
}

/// Encodes the header into exactly `header.header_pages` page-image WAL ops.
/// Fails if the directory no longer fits the reservation (the caller then
/// falls back to a full rewrite).
pub fn header_ops(header: &TableHeader, file: &str) -> Option<Vec<WalOp>> {
    let payload = encode_header_payload(header);
    if pages_for(payload.len()) > header.header_pages as u64 {
        return None;
    }
    let mut chunks = split_payload(&payload);
    while chunks.len() < header.header_pages as usize {
        chunks.push(&[]);
    }
    Some(
        chunks
            .iter()
            .enumerate()
            .map(|(i, c)| WalOp::Page {
                file: file.to_string(),
                page_no: i as u64,
                image: encode_page(c),
            })
            .collect(),
    )
}

/// Reads and validates the header of an open table file.
pub fn read_header<F: Read + Seek>(f: &mut F, file: &str) -> StoreResult<TableHeader> {
    let first = read_page(f, 0, file)?;
    let mut r = ByteReader::new(&first, file);
    let magic = r.get_bytes(8)?;
    if magic != TABLE_MAGIC {
        return Err(StoreError::corruption(file, "bad magic"));
    }
    let format = r.get_u32()?;
    if format != FORMAT_VERSION {
        return Err(StoreError::corruption(
            file,
            format!("unsupported format version {format}"),
        ));
    }
    let page_size = r.get_u32()?;
    if page_size != PAGE_SIZE as u32 {
        return Err(StoreError::corruption(
            file,
            format!("page size {page_size}, expected {PAGE_SIZE}"),
        ));
    }
    let header_pages = r.get_u32()?;
    if header_pages == 0 || header_pages > 1 << 20 {
        return Err(StoreError::corruption(
            file,
            format!("implausible header page count {header_pages}"),
        ));
    }
    // Re-read the full header payload across all header pages, then re-parse
    // from the top so multi-page headers work uniformly.
    let mut payload = first.clone();
    for p in 1..header_pages as u64 {
        payload.extend_from_slice(&read_page(f, p, file)?);
    }
    let mut r = ByteReader::new(&payload, file);
    let _ = r.get_bytes(8)?; // magic
    let _ = r.get_u32()?; // format
    let _ = r.get_u32()?; // page size
    let _ = r.get_u32()?; // header pages
    let version = r.get_u64()?;
    let block_rows = r.get_u32()?;
    let total_rows = r.get_u64()?;
    let schema = decode_schema(&mut r, file)?;
    let nblocks = r.get_u32()? as usize;
    if nblocks > 1 << 30 {
        return Err(StoreError::corruption(
            file,
            format!("implausible block count {nblocks}"),
        ));
    }
    let mut blocks = Vec::with_capacity(nblocks);
    let mut rows_sum = 0u64;
    for _ in 0..nblocks {
        let rows = r.get_u32()?;
        rows_sum += rows as u64;
        let mut chunks = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            chunks.push(ColumnChunk {
                first_page: r.get_u64()?,
                npages: r.get_u32()?,
                nbytes: r.get_u64()?,
            });
        }
        blocks.push(BlockDir { rows, chunks });
    }
    if rows_sum != total_rows {
        return Err(StoreError::corruption(
            file,
            format!("directory rows {rows_sum} != recorded total {total_rows}"),
        ));
    }
    Ok(TableHeader {
        version,
        block_rows,
        total_rows,
        header_pages,
        schema,
        blocks,
    })
}

/// Encodes the column segments of `table` split into blocks of at most
/// `block_rows` rows.  Returns per-block per-column encoded byte buffers.
fn encode_blocks(table: &Table, block_rows: u32) -> Vec<(u32, Vec<Vec<u8>>)> {
    let nrows = table.num_rows();
    let mut out = Vec::new();
    let mut start = 0usize;
    loop {
        let len = (nrows - start).min(block_rows as usize);
        if len == 0 && !out.is_empty() {
            break;
        }
        let mut segments = Vec::with_capacity(table.columns.len());
        for col in &table.columns {
            let mut w = ByteWriter::new();
            encode_column(&col.slice(start, len), &mut w);
            segments.push(w.into_bytes());
        }
        out.push((len as u32, segments));
        start += len;
        if start >= nrows {
            break;
        }
    }
    out
}

/// Lays out encoded blocks starting at `first_free_page`, producing the
/// directory entries and the page-image WAL ops for the data pages.
fn layout_blocks(
    encoded: &[(u32, Vec<Vec<u8>>)],
    first_free_page: u64,
    file: &str,
) -> (Vec<BlockDir>, Vec<WalOp>) {
    let mut page = first_free_page;
    let mut dirs = Vec::with_capacity(encoded.len());
    let mut ops = Vec::new();
    for (rows, segments) in encoded {
        let mut chunks = Vec::with_capacity(segments.len());
        for bytes in segments {
            let npages = pages_for(bytes.len());
            chunks.push(ColumnChunk {
                first_page: page,
                npages: npages as u32,
                nbytes: bytes.len() as u64,
            });
            for (i, chunk) in split_payload(bytes).iter().enumerate() {
                ops.push(WalOp::Page {
                    file: file.to_string(),
                    page_no: page + i as u64,
                    image: encode_page(chunk),
                });
            }
            page += npages;
        }
        dirs.push(BlockDir {
            rows: *rows,
            chunks,
        });
    }
    (dirs, ops)
}

/// Builds the complete set of WAL ops for a full table write: a `Remove` of
/// any previous file, the header pages, and every data page.
pub fn build_full(
    key: &str,
    table: &Table,
    version: u64,
    block_rows: u32,
) -> (TableHeader, Vec<WalOp>) {
    let file = table_file_name(key);
    let encoded = encode_blocks(table, block_rows);

    // Directory size is independent of the page numbers (fixed-width
    // fields), so size the header with placeholder positions first.
    let placeholder: Vec<BlockDir> = encoded
        .iter()
        .map(|(rows, segments)| BlockDir {
            rows: *rows,
            chunks: segments
                .iter()
                .map(|b| ColumnChunk {
                    first_page: 0,
                    npages: pages_for(b.len()) as u32,
                    nbytes: b.len() as u64,
                })
                .collect(),
        })
        .collect();
    let mut header = TableHeader {
        version,
        block_rows,
        total_rows: table.num_rows() as u64,
        header_pages: 1,
        schema: table.schema.clone(),
        blocks: placeholder,
    };
    let needed = pages_for(encode_header_payload(&header).len());
    header.header_pages = (needed * 2).max(needed + 2) as u32;

    let (dirs, data_ops) = layout_blocks(&encoded, header.header_pages as u64, &file);
    header.blocks = dirs;

    let mut ops = vec![WalOp::Remove { file: file.clone() }];
    ops.extend(header_ops(&header, &file).expect("reserved header pages must fit"));
    ops.extend(data_ops);
    (header, ops)
}

/// Builds the WAL ops for an append: new blocks after the current end page
/// plus rewritten header pages.  Returns `None` when the grown directory no
/// longer fits the header reservation — the caller must do a full rewrite.
pub fn build_append(
    key: &str,
    current: &TableHeader,
    rows: &Table,
) -> Option<(TableHeader, Vec<WalOp>)> {
    let file = table_file_name(key);
    let encoded = encode_blocks(rows, current.block_rows);
    let (dirs, data_ops) = layout_blocks(&encoded, current.end_page(), &file);
    let mut header = current.clone();
    header.total_rows += rows.num_rows() as u64;
    header.blocks.extend(dirs);
    let mut ops = header_ops(&header, &file)?;
    ops.extend(data_ops);
    Some((header, ops))
}

/// Reads one column segment back as a decoded [`verdict_engine::Column`].
pub fn read_chunk<F: Read + Seek>(
    f: &mut F,
    chunk: &ColumnChunk,
    file: &str,
    pages_read: &mut u64,
) -> StoreResult<verdict_engine::Column> {
    let payload = crate::page::read_payload(
        f,
        chunk.first_page,
        chunk.npages as u64,
        chunk.nbytes as usize,
        file,
    )?;
    *pages_read += chunk.npages as u64;
    let mut r = ByteReader::new(&payload, file);
    decode_column(&mut r, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Write};
    use verdict_engine::TableBuilder;

    fn sample_table(n: usize) -> Table {
        TableBuilder::new()
            .int_column("id", (0..n as i64).collect())
            .float_column("price", (0..n).map(|i| i as f64 * 0.25 + 0.1).collect())
            .build()
            .unwrap()
    }

    fn materialize(ops: &[WalOp]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for op in ops {
            if let WalOp::Page { page_no, image, .. } = op {
                let end = (*page_no as usize + 1) * PAGE_SIZE;
                if bytes.len() < end {
                    bytes.resize(end, 0);
                }
                bytes[*page_no as usize * PAGE_SIZE..end].copy_from_slice(image);
            }
        }
        bytes
    }

    fn read_all(bytes: &[u8], header: &TableHeader) -> Table {
        let mut cur = Cursor::new(bytes.to_vec());
        let mut table = Table::empty(header.schema.clone());
        let mut pages = 0u64;
        for block in &header.blocks {
            let cols: Vec<_> = block
                .chunks
                .iter()
                .map(|c| read_chunk(&mut cur, c, "t", &mut pages).unwrap())
                .collect();
            let part = Table::new(header.schema.clone(), cols).unwrap();
            table.append(&part).unwrap();
        }
        table
    }

    #[test]
    fn full_write_roundtrips_through_header_and_chunks() {
        let table = sample_table(1000);
        let (header, ops) = build_full("t", &table, 7, 256);
        let bytes = materialize(&ops);
        let mut cur = Cursor::new(bytes.clone());
        let back_header = read_header(&mut cur, "t").unwrap();
        assert_eq!(back_header, header);
        assert_eq!(back_header.version, 7);
        assert_eq!(back_header.total_rows, 1000);
        assert_eq!(back_header.blocks.len(), 4); // ceil(1000/256)
        let back = read_all(&bytes, &back_header);
        assert_eq!(back.num_rows(), 1000);
        for i in [0usize, 255, 256, 999] {
            assert_eq!(back.value(i, 0), table.value(i, 0));
            assert_eq!(back.value(i, 1), table.value(i, 1));
        }
    }

    #[test]
    fn append_adds_blocks_without_moving_existing_pages() {
        let table = sample_table(500);
        let (header, ops) = build_full("t", &table, 1, 200);
        let before = materialize(&ops);
        let more = sample_table(300);
        let (header2, ops2) = build_append("t", &header, &more).unwrap();
        assert_eq!(header2.total_rows, 800);
        // Appended ops never touch pages below the previous end page, except
        // the header pages.
        for op in &ops2 {
            if let WalOp::Page { page_no, .. } = op {
                assert!(
                    *page_no < header.header_pages as u64 || *page_no >= header.end_page(),
                    "append touched data page {page_no}"
                );
            }
        }
        let mut bytes = before;
        for op in &ops2 {
            if let WalOp::Page { page_no, image, .. } = op {
                let end = (*page_no as usize + 1) * PAGE_SIZE;
                if bytes.len() < end {
                    bytes.resize(end, 0);
                }
                bytes[*page_no as usize * PAGE_SIZE..end].copy_from_slice(image);
            }
        }
        let mut cur = Cursor::new(bytes.clone());
        let back_header = read_header(&mut cur, "t").unwrap();
        assert_eq!(back_header.total_rows, 800);
        let back = read_all(&bytes, &back_header);
        assert_eq!(back.value(500, 0), more.value(0, 0));
        assert_eq!(back.value(799, 1), more.value(299, 1));
    }

    #[test]
    fn empty_table_roundtrips() {
        let table = sample_table(0);
        let (header, ops) = build_full("t", &table, 1, 256);
        assert_eq!(header.total_rows, 0);
        let bytes = materialize(&ops);
        let mut cur = Cursor::new(bytes.clone());
        let back_header = read_header(&mut cur, "t").unwrap();
        let back = read_all(&bytes, &back_header);
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema.len(), 2);
    }

    #[test]
    fn header_corruption_is_typed() {
        let table = sample_table(10);
        let (_, ops) = build_full("t", &table, 1, 256);
        let mut bytes = materialize(&ops);
        bytes[40] ^= 0x01; // inside page 0 payload
        let mut cur = Cursor::new(bytes);
        assert!(read_header(&mut cur, "t").unwrap_err().is_corruption());
        // Truncated file: only half of page 0.
        let table = sample_table(10);
        let (_, ops) = build_full("t", &table, 1, 256);
        let bytes = materialize(&ops);
        let mut cur = Cursor::new(bytes[..100].to_vec());
        assert!(read_header(&mut cur, "t").unwrap_err().is_corruption());
        let _ = std::io::sink().flush();
    }
}
