//! Redo-only write-ahead log.
//!
//! Every mutation of the store — `CREATE SCRAMBLE`, a `REFRESH` append
//! batch, a full rebuild, a drop — is a transaction of full-page images:
//!
//! ```text
//! BEGIN(txid)
//! PAGE(file, page_no, image)*     -- full 8 KiB encoded page images
//! REMOVE(file)*                   -- whole-file deletion (rebuild/drop)
//! COMMIT(txid)
//! ```
//!
//! The commit protocol is: append the whole transaction to the log, `fsync`
//! the log (this is the commit point), then apply the images to the data
//! files, `fsync` those, and truncate the log (checkpoint).  Recovery on
//! open replays committed transactions in order and discards any torn tail
//! — a transaction without its `COMMIT` record never touches a data file,
//! so a crash at any instant leaves every table either fully old or fully
//! new.
//!
//! Record framing (all integers little-endian):
//!
//! ```text
//! [ kind: u8 ][ txid: u64 ][ payload_len: u32 ][ payload ][ checksum: u64 ]
//! ```
//!
//! The checksum is FNV-1a 64 over kind, txid, and payload bytes, so a torn
//! or partially-written record at the tail is detected rather than replayed.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{StoreError, StoreResult};
use crate::page::{fnv1a, PAGE_SIZE};
use crate::store::Counters;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Name of the log file inside the store directory.
pub const WAL_FILE: &str = "wal.log";

const KIND_BEGIN: u8 = 1;
const KIND_PAGE: u8 = 2;
const KIND_REMOVE: u8 = 3;
const KIND_COMMIT: u8 = 4;

/// One logged operation inside a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Write a full page image at `page_no` of `file`.
    Page {
        /// Data file name (relative to the store directory).
        file: String,
        /// Page number within the file.
        page_no: u64,
        /// The full [`PAGE_SIZE`] encoded page image.
        image: Vec<u8>,
    },
    /// Delete `file` entirely (ignored if already absent).
    Remove {
        /// Data file name (relative to the store directory).
        file: String,
    },
}

/// The write-ahead log plus the fsync/apply machinery around it.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    dir: PathBuf,
    file: File,
    next_txid: u64,
    stats: Arc<Counters>,
}

fn encode_record(kind: u8, txid: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + 4 + payload.len() + 8);
    out.push(kind);
    out.extend_from_slice(&txid.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut hashed = Vec::with_capacity(1 + 8 + payload.len());
    hashed.push(kind);
    hashed.extend_from_slice(&txid.to_le_bytes());
    hashed.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(&hashed).to_le_bytes());
    out
}

struct RawRecord {
    kind: u8,
    txid: u64,
    payload: Vec<u8>,
}

/// Parses one record at `buf[pos..]`.  Returns `None` on a clean end or any
/// torn/corrupt tail — recovery treats both identically (discard the tail).
fn parse_record(buf: &[u8], pos: usize) -> Option<(RawRecord, usize)> {
    let header = 1 + 8 + 4;
    if pos + header > buf.len() {
        return None;
    }
    let kind = buf[pos];
    let txid = u64::from_le_bytes(buf[pos + 1..pos + 9].try_into().unwrap());
    let len = u32::from_le_bytes(buf[pos + 9..pos + 13].try_into().unwrap()) as usize;
    let end = pos + header + len + 8;
    if end > buf.len() {
        return None;
    }
    let payload = &buf[pos + header..pos + header + len];
    let checksum = u64::from_le_bytes(buf[end - 8..end].try_into().unwrap());
    let mut hashed = Vec::with_capacity(1 + 8 + len);
    hashed.push(kind);
    hashed.extend_from_slice(&txid.to_le_bytes());
    hashed.extend_from_slice(payload);
    if fnv1a(&hashed) != checksum {
        return None;
    }
    Some((
        RawRecord {
            kind,
            txid,
            payload: payload.to_vec(),
        },
        end,
    ))
}

fn decode_op(rec: &RawRecord) -> StoreResult<WalOp> {
    let mut r = ByteReader::new(&rec.payload, WAL_FILE);
    match rec.kind {
        KIND_PAGE => {
            let file = r.get_str()?;
            let page_no = r.get_u64()?;
            let image = r.get_bytes(PAGE_SIZE)?.to_vec();
            Ok(WalOp::Page {
                file,
                page_no,
                image,
            })
        }
        KIND_REMOVE => Ok(WalOp::Remove { file: r.get_str()? }),
        k => Err(StoreError::corruption(
            WAL_FILE,
            format!("unexpected op kind {k}"),
        )),
    }
}

fn apply_ops(dir: &Path, ops: &[WalOp], stats: &Counters) -> StoreResult<Vec<String>> {
    let mut touched = Vec::new();
    for op in ops {
        match op {
            WalOp::Page {
                file,
                page_no,
                image,
            } => {
                let path = dir.join(file);
                let mut f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(&path)?;
                f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
                f.write_all(image)?;
                stats.page_written();
                if !touched.contains(file) {
                    touched.push(file.clone());
                }
            }
            WalOp::Remove { file } => {
                let path = dir.join(file);
                match std::fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                touched.retain(|t| t != file);
            }
        }
    }
    Ok(touched)
}

fn sync_files(dir: &Path, touched: &[String]) -> StoreResult<()> {
    for file in touched {
        let f = File::open(dir.join(file))?;
        f.sync_data()?;
    }
    Ok(())
}

impl Wal {
    /// Opens the log inside `dir`, replaying any committed transactions left
    /// behind by a crash, then truncating the log.  Returns the WAL plus the
    /// list of data files touched by recovery (callers re-read their
    /// headers).
    pub fn open(dir: &Path, stats: Arc<Counters>) -> StoreResult<(Wal, Vec<String>)> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut touched = Vec::new();
        if !buf.is_empty() {
            let mut pos = 0;
            let mut open_txns: BTreeMap<u64, Vec<WalOp>> = BTreeMap::new();
            let mut committed: Vec<Vec<WalOp>> = Vec::new();
            while let Some((rec, next)) = parse_record(&buf, pos) {
                pos = next;
                match rec.kind {
                    KIND_BEGIN => {
                        open_txns.insert(rec.txid, Vec::new());
                    }
                    KIND_PAGE | KIND_REMOVE => {
                        if let Some(ops) = open_txns.get_mut(&rec.txid) {
                            ops.push(decode_op(&rec)?);
                        }
                    }
                    KIND_COMMIT => {
                        if let Some(ops) = open_txns.remove(&rec.txid) {
                            committed.push(ops);
                        }
                    }
                    _ => break, // unknown kind: treat like a torn tail
                }
            }
            for ops in &committed {
                for t in apply_ops(dir, ops, &stats)? {
                    if !touched.contains(&t) {
                        touched.push(t);
                    }
                }
            }
            sync_files(dir, &touched)?;
            if !committed.is_empty() {
                stats.recovery();
            }
            file.set_len(0)?;
            file.sync_all()?;
            stats.checkpoint();
        }

        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                path,
                dir: dir.to_path_buf(),
                file,
                next_txid: 1,
                stats,
            },
            touched,
        ))
    }

    /// Commits a transaction: logs it durably, applies the page images to
    /// the data files, fsyncs them, and checkpoints (truncates) the log.
    pub fn commit(&mut self, ops: &[WalOp]) -> StoreResult<()> {
        let txid = self.next_txid;
        self.next_txid += 1;

        let mut batch = Vec::new();
        batch.extend_from_slice(&encode_record(KIND_BEGIN, txid, &[]));
        for op in ops {
            let mut w = ByteWriter::new();
            let kind = match op {
                WalOp::Page {
                    file,
                    page_no,
                    image,
                } => {
                    w.put_str(file);
                    w.put_u64(*page_no);
                    w.put_bytes(image);
                    KIND_PAGE
                }
                WalOp::Remove { file } => {
                    w.put_str(file);
                    KIND_REMOVE
                }
            };
            batch.extend_from_slice(&encode_record(kind, txid, &w.into_bytes()));
        }
        batch.extend_from_slice(&encode_record(KIND_COMMIT, txid, &[]));

        self.file.write_all(&batch)?;
        self.file.sync_data()?; // commit point
        self.stats.wal_synced(ops.len() as u64 + 2);

        let touched = apply_ops(&self.dir, ops, &self.stats)?;
        sync_files(&self.dir, &touched)?;

        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.stats.checkpoint();
        Ok(())
    }

    /// Appends a transaction to the log durably WITHOUT applying or
    /// checkpointing it.  Only used by crash tests to simulate dying between
    /// the commit point and the data-file apply.
    pub fn log_only_for_test(&mut self, ops: &[WalOp]) -> StoreResult<()> {
        let txid = self.next_txid;
        self.next_txid += 1;
        let mut batch = Vec::new();
        batch.extend_from_slice(&encode_record(KIND_BEGIN, txid, &[]));
        for op in ops {
            let mut w = ByteWriter::new();
            let kind = match op {
                WalOp::Page {
                    file,
                    page_no,
                    image,
                } => {
                    w.put_str(file);
                    w.put_u64(*page_no);
                    w.put_bytes(image);
                    KIND_PAGE
                }
                WalOp::Remove { file } => {
                    w.put_str(file);
                    KIND_REMOVE
                }
            };
            batch.extend_from_slice(&encode_record(kind, txid, &w.into_bytes()));
        }
        batch.extend_from_slice(&encode_record(KIND_COMMIT, txid, &[]));
        self.file.write_all(&batch)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Path of the log file (used by crash tests to truncate it mid-record).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::encode_page;
    use crate::store::Counters;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verdict_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn page_op(file: &str, page_no: u64, fill: u8) -> WalOp {
        WalOp::Page {
            file: file.to_string(),
            page_no,
            image: encode_page(&[fill; 64]),
        }
    }

    #[test]
    fn commit_applies_pages_and_checkpoints() {
        let dir = tempdir("commit");
        let stats = Arc::new(Counters::default());
        let (mut wal, touched) = Wal::open(&dir, stats.clone()).unwrap();
        assert!(touched.is_empty());
        wal.commit(&[page_op("a.tbl", 0, 7), page_op("a.tbl", 1, 9)])
            .unwrap();
        // Pages landed in the data file and the log is empty again.
        let meta = std::fs::metadata(dir.join("a.tbl")).unwrap();
        assert_eq!(meta.len(), 2 * PAGE_SIZE as u64);
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        let snap = stats.snapshot();
        assert_eq!(snap.pages_written, 2);
        assert!(snap.wal_syncs >= 1);
        assert!(snap.checkpoints >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_committed_and_discards_uncommitted() {
        let dir = tempdir("recover");
        let stats = Arc::new(Counters::default());
        {
            let (mut wal, _) = Wal::open(&dir, stats.clone()).unwrap();
            // Committed txn logged but never applied (simulated crash after
            // the commit point).
            wal.log_only_for_test(&[page_op("b.tbl", 0, 3)]).unwrap();
            // Torn tail: a BEGIN + PAGE with no COMMIT.
            let mut torn = Vec::new();
            torn.extend_from_slice(&encode_record(KIND_BEGIN, 99, &[]));
            let mut w = ByteWriter::new();
            w.put_str("c.tbl");
            w.put_u64(0);
            w.put_bytes(&encode_page(&[1, 2, 3]));
            torn.extend_from_slice(&encode_record(KIND_PAGE, 99, &w.into_bytes()));
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(wal.path()).unwrap();
            f.write_all(&torn).unwrap();
            f.sync_data().unwrap();
        }
        let (_wal, touched) = Wal::open(&dir, Arc::new(Counters::default())).unwrap();
        assert_eq!(touched, vec!["b.tbl".to_string()]);
        assert!(dir.join("b.tbl").exists());
        assert!(!dir.join("c.tbl").exists());
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_stops_at_corrupt_record() {
        let dir = tempdir("corrupt");
        {
            let (mut wal, _) = Wal::open(&dir, Arc::new(Counters::default())).unwrap();
            wal.log_only_for_test(&[page_op("d.tbl", 0, 5)]).unwrap();
            wal.log_only_for_test(&[page_op("e.tbl", 0, 6)]).unwrap();
            // Flip a byte inside the second transaction's page payload.
            let len = std::fs::metadata(wal.path()).unwrap().len();
            let mut bytes = std::fs::read(wal.path()).unwrap();
            let target = (len / 2) as usize + 200;
            bytes[target] ^= 0xff;
            std::fs::write(wal.path(), &bytes).unwrap();
        }
        let (_wal, _) = Wal::open(&dir, Arc::new(Counters::default())).unwrap();
        // First txn replayed; corrupt tail (second txn) discarded, no panic.
        assert!(dir.join("d.tbl").exists());
        assert!(!dir.join("e.tbl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_op_deletes_files_and_tolerates_missing() {
        let dir = tempdir("remove");
        let (mut wal, _) = Wal::open(&dir, Arc::new(Counters::default())).unwrap();
        wal.commit(&[page_op("f.tbl", 0, 1)]).unwrap();
        assert!(dir.join("f.tbl").exists());
        wal.commit(&[
            WalOp::Remove {
                file: "f.tbl".into(),
            },
            WalOp::Remove {
                file: "never_existed.tbl".into(),
            },
        ])
        .unwrap();
        assert!(!dir.join("f.tbl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
