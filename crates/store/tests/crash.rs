//! Crash-recovery fault injection for the persistent store.
//!
//! The centrepiece kills a real writer process mid-WAL-commit (the same
//! self-spawn pattern as the server soak harness: the test binary re-executes
//! itself with an env marker selecting the child role) and then proves the
//! store reopens with zero corruption — every table is either fully the old
//! generation or fully the new one, verified value-by-value.
//!
//! The deterministic companions simulate torn writes directly: truncated WAL
//! tails, truncated data files, and flipped bits must all surface as typed
//! corruption errors (or clean recovery), never a panic and never a silently
//! wrong answer.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use verdict_engine::{Table, TableBuilder};
use verdict_store::{Store, StoreError};

/// Env var carrying the store directory to the child writer process.
const CHILD_DIR_ENV: &str = "VERDICT_STORE_CRASH_DIR";

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic table contents for generation `v`: `v` rows whose values
/// are pure functions of the row index, so any mixing of generations (or a
/// torn row) is detectable value-by-value.
fn generation_table(v: u64) -> Table {
    let n = v as usize;
    TableBuilder::new()
        .int_column("id", (0..n).map(|j| j as i64 * 3 + 1).collect())
        .float_column("u", (0..n).map(|j| j as f64 * 0.617 + 0.25).collect())
        .build()
        .unwrap()
}

fn assert_generation_consistent(store: &Store) {
    if !verdict_engine::StoreHandle::contains(store, "t") {
        return; // crashed before the first commit ever applied
    }
    let (table, version) = store.load_table("t").expect("recovered table must load");
    assert_eq!(
        table.num_rows() as u64,
        version,
        "row count must match the committed generation"
    );
    let expect = generation_table(version);
    for j in 0..table.num_rows() {
        assert_eq!(table.value(j, 0), expect.value(j, 0), "row {j} id");
        assert_eq!(table.value(j, 1), expect.value(j, 1), "row {j} u");
    }
}

/// Child role: loop writing ever-larger generations of table `t` until the
/// parent kills us.  Prints `COMMIT <v>` after each durable commit so the
/// parent knows at least one transaction landed.  A no-op when the env
/// marker is absent (i.e. during a normal test run).
#[test]
fn crash_child_writer() {
    let Ok(dir) = std::env::var(CHILD_DIR_ENV) else {
        return;
    };
    let store = Store::open(&dir).expect("child open");
    for v in 1u64..100_000 {
        store
            .save_table("t", &generation_table(v), v)
            .expect("child save");
        println!("COMMIT {v}");
    }
}

#[test]
fn kill_writer_mid_wal_recovers_with_zero_corruption() {
    let dir = tempdir("kill");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();

    // Several kill-recover cycles over the same directory: each reopen must
    // replay or discard whatever the previous kill left behind.
    for cycle in 0..4 {
        let mut child = Command::new(&exe)
            .arg("--exact")
            .arg("crash_child_writer")
            .arg("--nocapture")
            .env(CHILD_DIR_ENV, &dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn child writer");

        // Wait for at least one committed generation, then a few more lines
        // so the kill lands mid-commit with high probability.
        let stdout = child.stdout.take().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let mut commits = 0;
        while commits < 3 + cycle {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if line.starts_with("COMMIT ") {
                commits += 1;
            }
        }
        assert!(commits > 0, "child never committed (cycle {cycle})");
        child.kill().expect("kill child");
        let _ = child.wait();

        // Recovery must reopen cleanly and leave exactly one consistent
        // generation.
        let store = Store::open(&dir).expect("reopen after kill");
        assert_generation_consistent(&store);
        drop(store);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_is_discarded_on_recovery() {
    let dir = tempdir("torn_wal");
    {
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &generation_table(100), 100).unwrap();
    }
    // Simulate a torn append: garbage bytes at the WAL tail.
    let wal_path = dir.join("wal.log");
    std::fs::write(&wal_path, [0xde, 0xad, 0xbe, 0xef, 0x01, 0x02]).unwrap();

    let store = Store::open(&dir).expect("torn tail must not block open");
    assert_generation_consistent(&store);
    assert_eq!(
        std::fs::metadata(&wal_path).unwrap().len(),
        0,
        "recovery truncates the torn tail"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_truncated_mid_record_replays_committed_prefix_only() {
    let dir = tempdir("midrec");
    std::fs::create_dir_all(&dir).unwrap();
    let stats = std::sync::Arc::new(verdict_store::store::Counters::default());
    {
        // Log two committed transactions without applying them (crash after
        // the commit point), then tear the second one in half.
        let (mut wal, _) = verdict_store::wal::Wal::open(&dir, stats).unwrap();
        let page = verdict_store::page::encode_page(b"generation one");
        wal.log_only_for_test(&[verdict_store::wal::WalOp::Page {
            file: "a.tbl".into(),
            page_no: 0,
            image: page.clone(),
        }])
        .unwrap();
        wal.log_only_for_test(&[verdict_store::wal::WalOp::Page {
            file: "b.tbl".into(),
            page_no: 0,
            image: page,
        }])
        .unwrap();
        let len = std::fs::metadata(wal.path()).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(wal.path())
            .unwrap();
        f.set_len(len - 2000).unwrap(); // tear into the middle of txn 2
    }
    let (_, touched) = verdict_store::wal::Wal::open(
        &dir,
        std::sync::Arc::new(verdict_store::store::Counters::default()),
    )
    .unwrap();
    assert_eq!(touched, vec!["a.tbl".to_string()]);
    assert!(dir.join("a.tbl").exists());
    assert!(!dir.join("b.tbl").exists(), "torn txn must not apply");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_data_file_reads_as_typed_corruption() {
    let dir = tempdir("trunc_tbl");
    {
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &generation_table(50_000), 1).unwrap();
    }
    // Tear the file in half — the header pages survive, data pages don't.
    let path = dir.join("t.tbl");
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);

    let store = Store::open(&dir).expect("header intact, open succeeds");
    let err = store.load_table("t").unwrap_err();
    assert!(err.is_corruption(), "expected corruption, got: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_bit_in_data_page_is_detected_not_served() {
    let dir = tempdir("bitflip");
    {
        let store = Store::open(&dir).unwrap();
        store.save_table("t", &generation_table(10_000), 1).unwrap();
    }
    let path = dir.join("t.tbl");
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit deep inside the data pages (past the header reservation).
    let target = bytes.len() - 4096;
    bytes[target] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let store = Store::open(&dir).unwrap();
    match store.load_table("t") {
        Err(e) => assert!(e.is_corruption(), "{e}"),
        Ok(_) => panic!("flipped bit must not decode cleanly"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_blob_is_typed_not_panicking() {
    let dir = tempdir("blob");
    {
        let store = Store::open(&dir).unwrap();
        store
            .put_blob("verdict_meta", b"important metadata")
            .unwrap();
    }
    let path = dir.join("verdict_meta.blob");
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte inside the data page's checksummed payload (page 1).
    bytes[verdict_store::page::PAGE_SIZE + 15] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let store = Store::open(&dir).unwrap();
    match store.get_blob("verdict_meta") {
        Err(StoreError::Corruption { .. }) => {}
        other => panic!("expected typed corruption, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
