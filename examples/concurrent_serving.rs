//! Concurrent serving tour: spin up the TCP server over a shared context and
//! drive it from several client sessions at once — **everything over the
//! one-verb SQL protocol**: scramble DDL, dashboard queries, `SHOW STATS`,
//! and exact-mode appends via `BYPASS`.  Watch the approximate-answer cache
//! serve dashboard repeats without re-executing, then invalidate itself the
//! moment the data changes.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```
//! (`VERDICT_EXAMPLE_SCALE` overrides the dataset scale, e.g. CI uses 0.02.)

use std::sync::Arc;
use verdictdb::server::{VerdictClient, VerdictServer};
use verdictdb::{instacart_context, VerdictConfig};

const DASHBOARD: &str =
    "SELECT quantity, avg(price) AS ap FROM order_products GROUP BY quantity ORDER BY quantity";

fn main() {
    // One engine + middleware context, shared by every session.
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 256;
    let (_engine, ctx) = instacart_context(verdictdb::example_scale(0.05), config);
    let ctx = Arc::new(ctx);

    let handle = VerdictServer::bind("127.0.0.1:0", Arc::clone(&ctx))
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr();
    println!("serving on {addr}\n");

    // Sample preparation is a SQL statement over the wire, like everything
    // else on this protocol.
    let mut admin = VerdictClient::connect(addr).expect("connect");
    let built = admin
        .sql("CREATE SCRAMBLE op_scramble FROM order_products METHOD uniform")
        .expect("scramble build");
    println!(
        "built scramble {} ({} rows)",
        built.extra("scramble").unwrap_or("?"),
        built.extra("sample_rows").unwrap_or("?"),
    );

    // Four sessions issue the same dashboard query concurrently.  The first
    // execution computes (sample scan + error assembly); every other request
    // is a cache hit with the bit-identical estimate and interval.
    std::thread::scope(|scope| {
        for session in 0..4 {
            scope.spawn(move || {
                let mut client = VerdictClient::connect(addr).expect("connect");
                for round in 0..3 {
                    let answer = client.sql(DASHBOARD).expect("query");
                    println!(
                        "session {session} round {round}: {} rows, {}{} in {} µs",
                        answer.header.rows,
                        if answer.header.exact {
                            "exact"
                        } else {
                            "approximate"
                        },
                        if answer.header.cached {
                            " (cached)"
                        } else {
                            ""
                        },
                        answer.header.elapsed_us
                    );
                }
                client.quit().expect("quit");
            });
        }
    });

    let stats = admin.sql("SHOW STATS").expect("stats");
    println!(
        "\ncache: {} hits, {} misses, {} entries",
        stats.extra("cache_hits").unwrap_or("?"),
        stats.extra("cache_misses").unwrap_or("?"),
        stats.extra("cache_entries").unwrap_or("?"),
    );

    // Append a batch to the fact table: the cached dashboard answer is now
    // stale and the next request recomputes from the grown table.  BYPASS is
    // the exact/DDL path on the same SQL verb.
    admin
        .sql(
            "BYPASS CREATE TABLE op_batch AS SELECT order_id, product_id, price, quantity, \
             add_to_cart_order, reordered FROM order_products LIMIT 5000",
        )
        .expect("stage batch");
    admin
        .sql("BYPASS INSERT INTO order_products SELECT * FROM op_batch")
        .expect("append");
    let after = admin.sql(DASHBOARD).expect("query after append");
    println!(
        "\nafter append: cached={} (invalidated, recomputed in {} µs)",
        after.header.cached, after.header.elapsed_us
    );
    // Fold the batch into the scramble so future answers track the new data.
    let refreshed = admin
        .sql("REFRESH SCRAMBLES order_products FROM op_batch")
        .expect("refresh");
    println!(
        "refreshed {} scramble(s) from the batch",
        refreshed.extra("refreshed_samples").unwrap_or("?")
    );

    admin.quit().expect("quit");
    handle.stop();
}
