//! Concurrent serving tour: spin up the TCP server over a shared context,
//! drive it from several client sessions at once, and watch the
//! approximate-answer cache serve dashboard repeats without re-executing —
//! then invalidate itself the moment the data changes.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```

use std::sync::Arc;
use verdictdb::core::SampleType;
use verdictdb::server::{VerdictClient, VerdictServer};
use verdictdb::{instacart_context, VerdictConfig};

const DASHBOARD: &str =
    "SELECT quantity, avg(price) AS ap FROM order_products GROUP BY quantity ORDER BY quantity";

fn main() {
    // One engine + middleware context, shared by every session.
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 256;
    let (_engine, ctx) = instacart_context(0.05, config);
    ctx.create_sample("order_products", SampleType::Uniform)
        .expect("sample build");
    let ctx = Arc::new(ctx);

    let handle = VerdictServer::bind("127.0.0.1:0", Arc::clone(&ctx))
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr();
    println!("serving on {addr}\n");

    // Four sessions issue the same dashboard query concurrently.  The first
    // execution computes (sample scan + error assembly); every other request
    // is a cache hit with the bit-identical estimate and interval.
    std::thread::scope(|scope| {
        for session in 0..4 {
            scope.spawn(move || {
                let mut client = VerdictClient::connect(addr).expect("connect");
                for round in 0..3 {
                    let answer = client.query(DASHBOARD).expect("query");
                    println!(
                        "session {session} round {round}: {} rows, {}{} in {} µs",
                        answer.header.rows,
                        if answer.header.exact {
                            "exact"
                        } else {
                            "approximate"
                        },
                        if answer.header.cached {
                            " (cached)"
                        } else {
                            ""
                        },
                        answer.header.elapsed_us
                    );
                }
                client.quit().expect("quit");
            });
        }
    });

    let mut client = VerdictClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    println!(
        "\ncache: {} hits, {} misses, {} entries",
        stats.extra("cache_hits").unwrap_or("?"),
        stats.extra("cache_misses").unwrap_or("?"),
        stats.extra("cache_entries").unwrap_or("?"),
    );

    // Append a batch to the fact table: the cached dashboard answer is now
    // stale and the next request recomputes from the grown table.
    client
        .exact(
            "CREATE TABLE op_batch AS SELECT order_id, product_id, price, quantity, \
             add_to_cart_order, reordered FROM order_products LIMIT 5000",
        )
        .expect("stage batch");
    client
        .exact("INSERT INTO order_products SELECT * FROM op_batch")
        .expect("append");
    let after = client.query(DASHBOARD).expect("query after append");
    println!(
        "\nafter append: cached={} (invalidated, recomputed in {} µs)",
        after.header.cached, after.header.elapsed_us
    );

    client.quit().expect("quit");
    handle.stop();
}
