//! Error-estimation techniques side by side.
//!
//! Reproduces the spirit of §6.4/§6.5: on a synthetic sample with known
//! statistics, compare the confidence intervals and runtimes of the central
//! limit theorem, bootstrap, traditional subsampling, and variational
//! subsampling, and show the O(n) vs O(b·n) gap of their SQL formulations.
//!
//! Run with: `cargo run --release --example error_estimation`

use std::time::Instant;
use verdictdb::core::estimate::{
    bootstrap_interval, clt_interval, default_subsample_size, sql_baselines,
    traditional_subsampling_interval, variational_subsampling_interval,
};
use verdictdb::data::SyntheticGenerator;
use verdictdb::Engine;

fn main() {
    let n = 200_000;
    let sample = SyntheticGenerator::paper_default(n).values();
    let confidence = 0.95;
    let b = 100;
    let ns = default_subsample_size(n);

    println!("sample: n = {n}, true mean = 10.0, true stddev = 10.0, confidence = {confidence}");
    println!(
        "{:<26} {:>10} {:>22} {:>12}",
        "method", "estimate", "95% interval", "time"
    );

    let report = |name: &str, f: &dyn Fn() -> verdictdb::core::estimate::ConfidenceInterval| {
        let start = Instant::now();
        let ci = f();
        let elapsed = start.elapsed();
        println!(
            "{:<26} {:>10.4} [{:>9.4}, {:>9.4}] {:>9.2?}",
            name, ci.estimate, ci.lower, ci.upper, elapsed
        );
    };

    report("CLT (closed form)", &|| clt_interval(&sample, confidence));
    report("bootstrap (b=100)", &|| {
        bootstrap_interval(&sample, b, confidence, 1)
    });
    report("traditional subsampling", &|| {
        traditional_subsampling_interval(&sample, b, ns, confidence, 2)
    });
    report("variational subsampling", &|| {
        variational_subsampling_interval(&sample, ns, confidence, 3)
    });

    // SQL-level comparison: run the three SQL formulations against the
    // in-memory engine and compare latencies (Figure 7's shape).
    println!("\nSQL formulations executed by the underlying engine (sample of 100K rows):");
    let engine = Engine::with_seed(9);
    SyntheticGenerator::paper_default(100_000).register(&engine);

    let variational =
        sql_baselines::variational_subsampling_sql("synthetic", "value", Some("grp"), 100);
    let traditional =
        sql_baselines::traditional_subsampling_sql("synthetic", "value", Some("grp"), 100, 0.01);
    let bootstrap =
        sql_baselines::consolidated_bootstrap_sql("synthetic", "value", Some("grp"), 100);

    for (name, sql) in [
        ("variational subsampling", &variational),
        ("traditional subsampling", &traditional),
        ("consolidated bootstrap", &bootstrap),
    ] {
        let start = Instant::now();
        let result = engine.execute_sql(sql).unwrap();
        println!(
            "  {:<26} {:>8} result rows   {:>10.2?}",
            name,
            result.table.num_rows(),
            start.elapsed()
        );
    }
    println!("\nvariational subsampling touches every row once (O(n)); the baselines touch every row b times (O(b\u{b7}n)).");

    // Session-level view: the same machinery through the SQL-only surface,
    // with the confidence level set per session (`SET confidence = c`).
    // Higher confidence → wider interval → larger estimated relative error,
    // all without touching any shared configuration.
    println!("\nper-session confidence via SQL (SET confidence = c):");
    let conn: std::sync::Arc<dyn verdictdb::Backend> = std::sync::Arc::new(engine);
    let mut config = verdictdb::VerdictConfig::for_testing();
    config.min_table_rows = 1_000;
    let ctx = std::sync::Arc::new(verdictdb::VerdictContext::new(conn, config));
    let mut session = verdictdb::VerdictSession::new(ctx);
    session
        .execute("CREATE SCRAMBLE syn_scramble FROM synthetic METHOD uniform RATIO 0.01")
        .unwrap();
    for confidence in ["0.90", "0.95", "0.99"] {
        session
            .execute(&format!("SET confidence = {confidence}"))
            .unwrap();
        let answer = session
            .execute("SELECT avg(value) AS m FROM synthetic")
            .unwrap()
            .into_answer()
            .unwrap();
        println!(
            "  confidence {confidence}: estimate {:>8.4}, max relative error {:.4}%",
            answer.table.value(0, 0).as_f64().unwrap_or(f64::NAN),
            100.0 * answer.max_relative_error()
        );
    }
}
