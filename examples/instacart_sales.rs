//! Instacart sales analytics: the paper's motivating "interactive analyst"
//! scenario.  An analyst dashboards revenue, basket sizes, and distinct-buyer
//! counts over a large sales fact table; VerdictDB answers every panel from
//! 1% samples prepared automatically by its default sampling policy
//! (Appendix F), falling back to exact execution only where AQP cannot help.
//!
//! Run with: `cargo run --release --example instacart_sales`

use std::sync::Arc;
use verdictdb::{Connection, Engine, VerdictConfig, VerdictContext};

fn main() {
    let engine = Arc::new(Engine::with_seed(2024));
    verdictdb::data::InstacartGenerator::new(0.5).register(&engine);
    let conn: Arc<dyn Connection> = engine.clone();

    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.seed = Some(3);
    let ctx = VerdictContext::new(conn, config);

    // Let the default policy decide which samples to build (uniform + hashed
    // on high-cardinality keys + stratified on low-cardinality columns).
    for table in ["orders", "order_products"] {
        let created = ctx.create_recommended_samples(table).unwrap();
        println!(
            "default policy built {} samples for {table}:",
            created.len()
        );
        for s in &created {
            println!(
                "  {:<55} {:>9} rows  ({})",
                s.sample_table, s.sample_rows, s.sample_type
            );
        }
    }

    let dashboard = [
        (
            "revenue by city",
            "SELECT city, sum(p.price * p.quantity) AS revenue \
             FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             GROUP BY city ORDER BY revenue DESC LIMIT 8",
        ),
        (
            "average basket line value by day of week",
            "SELECT order_dow, avg(p.price) AS avg_price, count(*) AS lines \
             FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             GROUP BY order_dow ORDER BY order_dow",
        ),
        (
            "distinct buyers",
            "SELECT count(DISTINCT user_id) AS buyers FROM orders",
        ),
        (
            "evening premium items",
            "SELECT count(*) AS n, avg(p.price) AS avg_price \
             FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             WHERE o.order_hour >= 18 AND p.price > 15",
        ),
    ];

    for (title, sql) in dashboard {
        let answer = ctx.execute(sql).unwrap();
        println!("\n=== {title} ===  (approximate: {})", !answer.exact);
        println!("{}", answer.table.to_ascii(10));
        if !answer.errors.is_empty() {
            let worst = answer.max_relative_error();
            println!("worst estimated relative error: {:.3}%", 100.0 * worst);
        }
        println!("rows scanned: {}", answer.rows_scanned);
    }
}
