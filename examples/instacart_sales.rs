//! Instacart sales analytics: the paper's motivating "interactive analyst"
//! scenario, driven entirely through the SQL-only session surface.  An
//! analyst dashboards revenue, basket sizes, and distinct-buyer counts over
//! a large sales fact table; `CREATE SCRAMBLES FROM <t>` applies VerdictDB's
//! default sampling policy (Appendix F), and every panel is answered from
//! those 1% scrambles, falling back to exact execution only where AQP
//! cannot help.
//!
//! Run with: `cargo run --release --example instacart_sales`
//! (`VERDICT_EXAMPLE_SCALE` overrides the dataset scale, e.g. CI uses 0.02.)

use std::sync::Arc;
use verdictdb::{Backend, Engine, VerdictConfig, VerdictContext, VerdictResponse, VerdictSession};

fn main() {
    let engine = Arc::new(Engine::with_seed(2024));
    verdictdb::data::InstacartGenerator::new(verdictdb::example_scale(0.5)).register(&engine);
    let conn: Arc<dyn Backend> = engine.clone();

    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.seed = Some(3);
    let mut session = VerdictSession::new(Arc::new(VerdictContext::new(conn, config)));

    // Let the default policy decide which scrambles to build (uniform +
    // hashed on high-cardinality keys + stratified on low-cardinality
    // columns) — one SQL statement per table.
    for table in ["orders", "order_products"] {
        match session
            .execute(&format!("CREATE SCRAMBLES FROM {table}"))
            .unwrap()
        {
            VerdictResponse::ScramblesCreated(created) => {
                println!(
                    "default policy built {} scrambles for {table}:",
                    created.len()
                );
                for s in &created {
                    println!(
                        "  {:<55} {:>9} rows  ({})",
                        s.sample_table, s.sample_rows, s.sample_type
                    );
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    if let VerdictResponse::Scrambles(t) = session.execute("SHOW SCRAMBLES").unwrap() {
        println!("\nSHOW SCRAMBLES:\n{}", t.to_ascii(12));
    }

    let dashboard = [
        (
            "revenue by city",
            "SELECT city, sum(p.price * p.quantity) AS revenue \
             FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             GROUP BY city ORDER BY revenue DESC LIMIT 8",
        ),
        (
            "average basket line value by day of week",
            "SELECT order_dow, avg(p.price) AS avg_price, count(*) AS lines \
             FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             GROUP BY order_dow ORDER BY order_dow",
        ),
        (
            "distinct buyers",
            "SELECT count(DISTINCT user_id) AS buyers FROM orders",
        ),
        (
            "evening premium items",
            "SELECT count(*) AS n, avg(p.price) AS avg_price \
             FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
             WHERE o.order_hour >= 18 AND p.price > 15",
        ),
    ];

    for (title, sql) in dashboard {
        let answer = session.execute(sql).unwrap().into_answer().unwrap();
        println!("\n=== {title} ===  (approximate: {})", !answer.exact);
        println!("{}", answer.table.to_ascii(10));
        if !answer.errors.is_empty() {
            let worst = answer.max_relative_error();
            println!("worst estimated relative error: {:.3}%", 100.0 * worst);
        }
        println!("rows scanned: {}", answer.rows_scanned);
    }
}
