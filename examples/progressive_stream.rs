//! Progressive query execution: watch an approximate answer refine block by
//! block, and stop early the moment a target error is met.
//!
//! 1. load data and build a scramble (physically shuffled at build time, so
//!    any prefix is a uniform subsample),
//! 2. pull `ProgressFrame`s from `VerdictSession::stream` and print the
//!    estimate ± interval as it tightens,
//! 3. re-run with `SET target_error` and see the stream stop after a strict
//!    prefix of the scramble,
//! 4. verify the completed stream's final frame equals the one-shot answer
//!    bit for bit.
//!
//! Run with: `cargo run --release --example progressive_stream`
//! (`VERDICT_EXAMPLE_SCALE` overrides the dataset scale, e.g. CI uses 0.02.)

use std::sync::Arc;
use verdictdb::{Backend, Engine, Value, VerdictConfig, VerdictContext, VerdictSession};

fn main() {
    // --- 1. underlying database + a shuffled scramble ---------------------
    let engine = Arc::new(Engine::with_seed(7));
    verdictdb::data::InstacartGenerator::new(verdictdb::example_scale(0.5)).register(&engine);
    let conn: Arc<dyn Backend> = engine.clone();
    let mut config = VerdictConfig::default();
    config.min_table_rows = 1_000;
    config.io_budget = 1.0;
    config.include_error_columns = true;
    config.seed = Some(1);
    config.answer_cache_capacity = 16;
    let ctx = Arc::new(VerdictContext::new(conn, config));
    let mut session = VerdictSession::new(ctx);
    session
        .execute("CREATE SCRAMBLE op_scr FROM order_products METHOD uniform RATIO 0.25")
        .unwrap();

    const QUERY: &str = "SELECT avg(price) AS avg_price FROM order_products";

    // --- 2. pull frames: the estimate refines block by block --------------
    session.execute("SET stream_block_rows = 2000").unwrap();
    println!("streaming `{QUERY}`:");
    let mut final_estimate = f64::NAN;
    for frame in session.stream(QUERY).unwrap() {
        let frame = frame.unwrap();
        let est = frame.answer.table.value(0, 0).as_f64().unwrap_or(f64::NAN);
        let err = frame.answer.table.value(0, 1).as_f64().unwrap_or(f64::NAN);
        println!(
            "  frame {:>2}  {:>5.1}%  avg_price = {est:.4} ± {err:.4}",
            frame.index,
            100.0 * frame.fraction
        );
        if frame.last {
            final_estimate = est;
        }
    }

    // --- 3. early stop at a target error ----------------------------------
    session.execute("SET target_error = 0.02").unwrap();
    let frames: Vec<_> = session
        .stream(QUERY)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    let last = frames.last().unwrap();
    println!(
        "\nwith SET target_error = 0.02: stopped after {} frame(s), {:.1}% of the scramble \
         (early_stopped = {})",
        frames.len(),
        100.0 * last.fraction,
        last.early_stopped
    );
    session.execute("SET target_error = default").unwrap();

    // --- 4. the completed stream populated the cache; a plain SELECT hits --
    let repeat = session.execute(QUERY).unwrap().into_answer().unwrap();
    println!(
        "\nrepeat SELECT: cached = {}, answer = {:?} (streamed final was {final_estimate:.4})",
        repeat.cached,
        repeat.table.value(0, 0)
    );
    assert!(
        repeat.cached,
        "the completed stream's final frame is reusable"
    );
    match repeat.table.value(0, 0) {
        Value::Float(v) => assert_eq!(v.to_bits(), final_estimate.to_bits()),
        other => panic!("expected a float estimate, got {other:?}"),
    }
    println!("cached repeat is bit-identical to the streamed final frame ✓");
}
