//! Quickstart: the complete VerdictDB workflow in one file — all through the
//! SQL-only session surface.
//!
//! 1. load data into the "underlying database" (the in-memory engine),
//! 2. build scrambles offline with `CREATE SCRAMBLE … FROM …`,
//! 3. run an analytical query, tune per-session accuracy with `SET`, and
//!    compare against the exact answer via `BYPASS`.
//!
//! Run with: `cargo run --release --example quickstart`
//! (`VERDICT_EXAMPLE_SCALE` overrides the dataset scale, e.g. CI uses 0.02.)

use std::sync::Arc;
use verdictdb::{Backend, Engine, VerdictConfig, VerdictContext, VerdictResponse, VerdictSession};

fn main() {
    // --- 1. the underlying database -------------------------------------
    let engine = Arc::new(Engine::with_seed(42));
    verdictdb::data::InstacartGenerator::new(verdictdb::example_scale(0.5)).register(&engine);
    let conn: Arc<dyn Backend> = engine.clone();

    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.include_error_columns = true;
    config.seed = Some(1);
    let ctx = Arc::new(VerdictContext::new(conn, config));

    // --- 2. offline sample preparation: plain SQL DDL --------------------
    // A session speaks only SQL; this is exactly what a JDBC-style client
    // would send over the wire.
    let mut session = VerdictSession::new(ctx);
    println!("building scrambles ...");
    for ddl in [
        "CREATE SCRAMBLE op_scramble FROM order_products METHOD uniform",
        "CREATE SCRAMBLE orders_by_city FROM orders METHOD stratified ON city",
    ] {
        match session.execute(ddl).unwrap() {
            VerdictResponse::ScramblesCreated(metas) => {
                for m in metas {
                    println!(
                        "  {} -> {} rows (ratio {:.3}%)",
                        m.sample_table,
                        m.sample_rows,
                        100.0 * m.actual_ratio()
                    );
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    if let VerdictResponse::Scrambles(t) = session.execute("SHOW SCRAMBLES").unwrap() {
        println!("\nSHOW SCRAMBLES:\n{}", t.to_ascii(10));
    }

    // --- 3. online query processing ---------------------------------------
    let sql = "SELECT city, count(*) AS n, avg(p.price) AS avg_price \
               FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
               GROUP BY city ORDER BY n DESC LIMIT 5";

    let approx = session.execute(sql).unwrap().into_answer().unwrap();
    // BYPASS <query> is the exact-mode escape hatch — same session, same SQL.
    let exact = session
        .execute(&format!("BYPASS {sql}"))
        .unwrap()
        .into_answer()
        .unwrap();

    println!("approximate answer (exact = {}):", approx.exact);
    println!("{}", approx.table.to_ascii(10));
    println!("exact answer:");
    println!("{}", exact.table.to_ascii(10));

    println!("estimated errors per aggregate column:");
    for e in &approx.errors {
        println!(
            "  {:<12} mean relative error {:.3}%  max {:.3}%",
            e.column,
            100.0 * e.mean_relative_error,
            100.0 * e.max_relative_error
        );
    }
    println!(
        "\nrows scanned: approximate = {}, exact = {}  (speedup in data read: {:.1}x)",
        approx.rows_scanned,
        exact.rows_scanned,
        exact.rows_scanned as f64 / approx.rows_scanned.max(1) as f64
    );
    println!("rewritten SQL sent to the underlying database:");
    for sql in &approx.rewritten_sql {
        println!("  {sql}");
    }

    // --- 4. per-session accuracy contract ---------------------------------
    // An unattainably tight target error makes the middleware rerun the
    // query exactly (§2.4) — configured with SQL, scoped to this session.
    session.execute("SET target_error = 0.00001").unwrap();
    let contracted = session.execute(sql).unwrap().into_answer().unwrap();
    println!(
        "\nwith SET target_error = 0.00001 the answer is exact: {}",
        contracted.exact
    );
}
