//! Quickstart: the complete VerdictDB workflow in one file.
//!
//! 1. load data into the "underlying database" (the in-memory engine),
//! 2. build samples offline,
//! 3. run an analytical query and compare the approximate answer + error
//!    estimate against the exact answer.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use verdictdb::core::sample::SampleType;
use verdictdb::{Connection, Engine, VerdictConfig, VerdictContext};

fn main() {
    // --- 1. the underlying database -------------------------------------
    let engine = Arc::new(Engine::with_seed(42));
    verdictdb::data::InstacartGenerator::new(0.5).register(&engine);
    let conn: Arc<dyn Connection> = engine.clone();

    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.include_error_columns = true;
    config.seed = Some(1);
    let ctx = VerdictContext::new(conn, config);

    // --- 2. offline sample preparation -----------------------------------
    println!("building samples ...");
    let uniform = ctx
        .create_sample("order_products", SampleType::Uniform)
        .unwrap();
    let stratified = ctx
        .create_sample(
            "orders",
            SampleType::Stratified {
                columns: vec!["city".into()],
            },
        )
        .unwrap();
    println!(
        "  {} -> {} rows (ratio {:.3}%)",
        uniform.base_table,
        uniform.sample_rows,
        100.0 * uniform.actual_ratio()
    );
    println!(
        "  {} -> {} rows (ratio {:.3}%)",
        stratified.base_table,
        stratified.sample_rows,
        100.0 * stratified.actual_ratio()
    );

    // --- 3. online query processing ---------------------------------------
    let sql = "SELECT city, count(*) AS n, avg(p.price) AS avg_price \
               FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
               GROUP BY city ORDER BY n DESC LIMIT 5";

    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();

    println!("\napproximate answer (exact = {}):", approx.exact);
    println!("{}", approx.table.to_ascii(10));
    println!("exact answer:");
    println!("{}", exact.table.to_ascii(10));

    println!("estimated errors per aggregate column:");
    for e in &approx.errors {
        println!(
            "  {:<12} mean relative error {:.3}%  max {:.3}%",
            e.column,
            100.0 * e.mean_relative_error,
            100.0 * e.max_relative_error
        );
    }
    println!(
        "\nrows scanned: approximate = {}, exact = {}  (speedup in data read: {:.1}x)",
        approx.rows_scanned,
        exact.rows_scanned,
        exact.rows_scanned as f64 / approx.rows_scanned.max(1) as f64
    );
    println!("rewritten SQL sent to the underlying database:");
    for sql in &approx.rewritten_sql {
        println!("  {sql}");
    }
}
