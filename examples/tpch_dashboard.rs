//! TPC-H decision-support queries with and without VerdictDB.
//!
//! Runs a subset of the tq-* workload twice — once exactly (`BYPASS`) and
//! once through VerdictDB — and reports the data-read reduction, the modeled
//! latency under the three engine profiles of the paper (Redshift / Spark
//! SQL / Impala), and the actual relative error of every aggregate,
//! mirroring the structure of Figures 4, 9, and 10.  Scramble preparation
//! and both execution modes are all SQL statements on one session.
//!
//! Run with: `cargo run --release --example tpch_dashboard`
//! (`VERDICT_EXAMPLE_SCALE` overrides the dataset scale, e.g. CI uses 0.02.)

use std::sync::Arc;
use verdictdb::engine::ExecStats;
use verdictdb::{Backend, Engine, EngineProfile, VerdictConfig, VerdictContext, VerdictSession};

fn main() {
    let engine = Arc::new(Engine::with_seed(7));
    verdictdb::data::TpchGenerator::new(verdictdb::example_scale(1.0)).register(&engine);
    let conn: Arc<dyn Backend> = engine.clone();

    let mut config = VerdictConfig::default();
    config.min_table_rows = 50_000;
    config.seed = Some(5);
    let mut session = VerdictSession::new(Arc::new(VerdictContext::new(conn, config)));

    println!("building scrambles for lineitem ...");
    for ddl in [
        "CREATE SCRAMBLE li_uniform FROM lineitem METHOD uniform",
        "CREATE SCRAMBLE li_by_flag FROM lineitem METHOD stratified \
         ON l_returnflag, l_linestatus",
        "CREATE SCRAMBLE li_by_order FROM lineitem METHOD hashed ON l_orderkey",
    ] {
        session.execute(ddl).unwrap();
    }

    let queries = verdictdb::data::tpch_queries();
    let subset = ["tq-1", "tq-6", "tq-12", "tq-14", "tq-19"];

    println!(
        "\n{:<7} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "query", "exact rows", "aqp rows", "redshift", "spark", "impala", "max err%"
    );
    for q in queries.iter().filter(|q| subset.contains(&q.id)) {
        let exact = session
            .execute(&format!("BYPASS {}", q.sql))
            .unwrap()
            .into_answer()
            .unwrap();
        let approx = session.execute(&q.sql).unwrap().into_answer().unwrap();
        let exact_stats = ExecStats {
            rows_scanned: exact.rows_scanned,
            elapsed: exact.elapsed,
        };
        let approx_stats = ExecStats {
            rows_scanned: approx.rows_scanned,
            elapsed: approx.elapsed,
        };
        let speedups: Vec<f64> = EngineProfile::all()
            .iter()
            .map(|p| p.speedup(&exact_stats, &approx_stats))
            .collect();
        println!(
            "{:<7} {:>12} {:>12} {:>9.1}x {:>9.1}x {:>9.1}x {:>9.3}",
            q.id,
            exact.rows_scanned,
            approx.rows_scanned,
            speedups[0],
            speedups[1],
            speedups[2],
            100.0 * approx.max_relative_error()
        );
    }
    println!("\n(speedups are modeled engine latencies: fixed overhead + per-row scan cost + measured CPU time)");
}
