//! # verdictdb
//!
//! Facade crate for **VerdictDB-rs**, a Rust reproduction of
//! *"VerdictDB: Universalizing Approximate Query Processing"* (SIGMOD 2018).
//!
//! It re-exports the four member crates so applications can depend on a
//! single crate:
//!
//! * [`sql`] — SQL parser, AST, dialects, printer;
//! * [`engine`] — the in-memory columnar SQL engine used as the underlying
//!   database substitute (Impala / Spark SQL / Redshift stand-in);
//! * [`core`] — the VerdictDB middleware itself (sampling, planning,
//!   variational-subsampling rewriting, answer/error assembly) and the
//!   SQL-only [`VerdictSession`] surface (scramble DDL, `BYPASS`, `SET`);
//! * [`data`] — dataset generators and the benchmark workloads;
//! * [`server`] — concurrent TCP serving layer (line protocol, session
//!   threads, approximate-answer cache front) plus [`RemoteBackend`], the
//!   wire protocol packaged as a pluggable [`Backend`];
//! * [`store`] — the persistent scramble store (paged columnar block files,
//!   redo-only WAL, crash recovery) behind `--data-dir` / cold-start
//!   serving (see `docs/storage.md`).
//!
//! The middleware reaches whatever store sits underneath through the
//! [`Backend`] trait (see `docs/backends.md`): the in-process [`Engine`] is
//! one implementation, [`RemoteBackend`] is another.
//!
//! See `examples/quickstart.rs` for a five-minute tour, README.md for the
//! project overview, and `docs/` for architecture and serving details.

pub use verdict_core as core;
pub use verdict_data as data;
pub use verdict_engine as engine;
pub use verdict_server as server;
pub use verdict_sql as sql;
pub use verdict_store as store;

pub use verdict_core::{
    BackendStats, DialectBackend, ProgressFrame, ProgressStream, QueryOptions, SampleType,
    VerdictAnswer, VerdictConfig, VerdictContext, VerdictError, VerdictResponse, VerdictResult,
    VerdictSession,
};
pub use verdict_engine::{
    Backend, Connection, Engine, EngineProfile, GroupStrategy, StoreHandle, Table, TableBuilder,
    Value,
};
pub use verdict_server::{RemoteBackend, ServerHandle, VerdictServer};
pub use verdict_store::{Store, StoreStats};

/// Convenience constructor: a [`VerdictSession`] over a freshly-created
/// context (the SQL-only surface most applications should use).
pub fn session(ctx: VerdictContext) -> VerdictSession {
    VerdictSession::new(std::sync::Arc::new(ctx))
}

/// Dataset scale for the bundled `examples/`: the given default, unless the
/// `VERDICT_EXAMPLE_SCALE` environment variable overrides it (CI runs every
/// example against tiny datasets this way).
pub fn example_scale(default: f64) -> f64 {
    std::env::var("VERDICT_EXAMPLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Convenience constructor: an in-memory engine preloaded with the
/// Instacart-like dataset at the given scale, wrapped in a [`VerdictContext`]
/// ready for sample creation.
pub fn instacart_context(
    scale: f64,
    config: VerdictConfig,
) -> (std::sync::Arc<Engine>, VerdictContext) {
    let engine = std::sync::Arc::new(Engine::with_seed(7));
    verdict_data::InstacartGenerator::new(scale).register(&engine);
    let conn: std::sync::Arc<dyn Backend> = engine.clone();
    (engine, VerdictContext::new(conn, config))
}

/// Convenience constructor: an in-memory engine preloaded with the TPC-H-like
/// dataset at the given scale factor, wrapped in a [`VerdictContext`].
pub fn tpch_context(scale: f64, config: VerdictConfig) -> (std::sync::Arc<Engine>, VerdictContext) {
    let engine = std::sync::Arc::new(Engine::with_seed(11));
    verdict_data::TpchGenerator::new(scale).register(&engine);
    let conn: std::sync::Arc<dyn Backend> = engine.clone();
    (engine, VerdictContext::new(conn, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_constructors_produce_working_contexts() {
        let (_engine, ctx) = instacart_context(0.005, VerdictConfig::for_testing());
        let exact = ctx.execute_exact("SELECT count(*) FROM orders").unwrap();
        assert!(exact.table.value(0, 0).as_i64().unwrap() > 0);
    }

    #[test]
    fn facade_session_speaks_sql_only() {
        let (_engine, ctx) = instacart_context(0.005, VerdictConfig::for_testing());
        let mut s = session(ctx);
        let answer = s
            .execute("BYPASS SELECT count(*) AS n FROM orders")
            .unwrap()
            .into_answer()
            .unwrap();
        assert!(answer.exact);
        assert!(answer.table.value(0, 0).as_i64().unwrap() > 0);
        let listing = s.execute("SHOW SCRAMBLES").unwrap();
        assert!(matches!(listing, VerdictResponse::Scrambles(_)));
    }
}
