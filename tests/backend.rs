//! Backend conformance suite.
//!
//! The middleware reaches storage only through the `Backend` trait, so any
//! implementation must be interchangeable: the same deterministic question
//! must come back **bit-identical** whether the engine is linked in-process
//! or sits behind the wire protocol as a [`RemoteBackend`], and a backend
//! that lacks optional capabilities (`data_version`, block scans) must
//! degrade gracefully — slower or uncached, never wrong.

use std::collections::HashMap;
use std::sync::Arc;

use verdictdb::sql::ImpalaDialect;
use verdictdb::{
    Backend, Engine, RemoteBackend, SampleType, ServerHandle, Table, Value, VerdictConfig,
    VerdictContext, VerdictServer, VerdictSession,
};

mod common;

/// Engine preloaded with the Instacart-like dataset under a fixed seed.
fn seeded_engine(scale: f64) -> Arc<Engine> {
    let engine = Arc::new(Engine::with_seed(42));
    verdictdb::data::InstacartGenerator::new(scale).register(&engine);
    engine
}

fn config() -> VerdictConfig {
    let mut config = VerdictConfig::for_testing();
    config.sampling_ratio = 0.05;
    config.io_budget = 0.12;
    config
}

/// Spawns a server over `engine` and builds a local context whose backend is
/// the wire protocol.  Scrambles registered on `source` are mirrored into
/// the new context — the scramble *tables* already live in the shared
/// engine, only the planning metadata needs copying.
fn remote_context_over(
    engine: Arc<Engine>,
    source: &VerdictContext,
    config: VerdictConfig,
) -> (Arc<VerdictContext>, ServerHandle) {
    let server_ctx = Arc::new(VerdictContext::new(
        engine as Arc<dyn Backend>,
        VerdictConfig::for_testing(),
    ));
    let handle = VerdictServer::bind("127.0.0.1:0", server_ctx)
        .expect("bind conformance server")
        .spawn()
        .expect("spawn conformance server");
    let remote = RemoteBackend::connect(handle.addr()).expect("connect remote backend");
    let ctx = Arc::new(VerdictContext::new(
        Arc::new(remote) as Arc<dyn Backend>,
        config,
    ));
    for meta in source.meta().all() {
        ctx.meta().register(meta);
    }
    (ctx, handle)
}

/// `SHOW STATS` as a name → value map (columns: section, stat, value).
fn stat_map(table: &Table) -> HashMap<String, i64> {
    (0..table.num_rows())
        .map(|r| {
            let name = match table.value_at(r, 1) {
                Value::Str(s) => s,
                other => panic!("stat name should be a string, got {other:?}"),
            };
            let value = table.value_at(r, 2).as_i64().expect("stat value");
            (name, value)
        })
        .collect()
}

#[test]
fn remote_backend_answers_are_bit_identical_to_in_process() {
    let engine = seeded_engine(0.1);
    let local = Arc::new(VerdictContext::new(
        engine.clone() as Arc<dyn Backend>,
        config(),
    ));
    local
        .create_sample("order_products", SampleType::Uniform)
        .unwrap();
    local
        .create_sample(
            "orders",
            SampleType::Hashed {
                columns: vec!["order_id".into()],
            },
        )
        .unwrap();

    let (remote, _server) = remote_context_over(engine, &local, config());

    let mut approximated = 0;
    for sql in [
        "SELECT count(*) AS n FROM order_products",
        "SELECT sum(price * quantity) AS rev, avg(price) AS ap FROM order_products",
        "SELECT count(*) AS n FROM order_products WHERE price > 10 AND reordered = 1",
        "SELECT city, count(*) AS n FROM orders GROUP BY city ORDER BY city",
        "SELECT count(DISTINCT order_id) AS u FROM orders",
    ] {
        let a = local.execute(sql).unwrap();
        let b = remote.execute(sql).unwrap();
        assert_eq!(a.exact, b.exact, "exactness differs for {sql}");
        common::assert_tables_bit_identical(&a.table, &b.table, sql);
        if !a.exact {
            approximated += 1;
        }
    }
    assert!(
        approximated >= 2,
        "conformance must cover approximate answers, only {approximated} were sampled"
    );

    // Exact (bypass) answers travel the wire too.
    let sql = "SELECT count(*) AS n, avg(price) AS ap FROM order_products";
    let a = local.execute_exact(sql).unwrap();
    let b = remote.execute_exact(sql).unwrap();
    common::assert_tables_bit_identical(&a.table, &b.table, sql);
}

#[test]
fn remote_backend_without_data_version_never_caches_but_stays_correct() {
    let engine = seeded_engine(0.05);
    let local = VerdictContext::new(engine.clone() as Arc<dyn Backend>, config());
    local
        .create_sample("order_products", SampleType::Uniform)
        .unwrap();

    let mut cached_config = config();
    cached_config.answer_cache_capacity = 64;
    let (remote, _server) = remote_context_over(engine, &local, cached_config);

    let sql = "SELECT count(*) AS n FROM order_products";
    let first = remote.execute(sql).unwrap();
    let second = remote.execute(sql).unwrap();
    assert!(!first.exact, "query should have been approximated");
    assert!(
        !second.cached,
        "a backend without data_version must stay uncacheable"
    );
    common::assert_tables_bit_identical(&first.table, &second.table, sql);

    assert_eq!(
        remote.cache_stats().insertions,
        0,
        "no answer may enter the cache without version tracking"
    );
    let backend = remote.backend_stats();
    assert_eq!(backend.name, "remote");
    assert!(
        backend.identity.starts_with("remote@"),
        "unexpected identity {}",
        backend.identity
    );
    assert!(backend.queries_routed > 0);
    assert!(
        backend.version_fallbacks > 0,
        "missing data_version must be counted as a capability fallback"
    );
}

#[test]
fn streaming_over_remote_falls_back_to_a_single_frame() {
    let engine = seeded_engine(0.05);
    let local = VerdictContext::new(engine.clone() as Arc<dyn Backend>, config());
    local
        .create_sample("order_products", SampleType::Uniform)
        .unwrap();
    let (remote, _server) = remote_context_over(engine, &local, config());

    let mut session = VerdictSession::new(Arc::clone(&remote));
    let frames: Vec<_> = session
        .stream("STREAM SELECT count(*) AS n FROM order_products")
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(
        frames.len(),
        1,
        "no block scans over the wire -> one consolidated frame"
    );

    let streams = remote.stream_stats();
    assert_eq!(streams.started, 1);
    assert_eq!(streams.fallbacks, 1);
    assert!(
        remote.backend_stats().scan_fallbacks >= 1,
        "declined block scan must be counted as a capability fallback"
    );
}

#[test]
fn show_stats_reports_per_backend_counters_over_the_wire() {
    let engine = seeded_engine(0.05);
    let local = VerdictContext::new(engine.clone() as Arc<dyn Backend>, config());
    local
        .create_sample("order_products", SampleType::Uniform)
        .unwrap();
    let (remote, _server) = remote_context_over(engine, &local, config());

    let mut session = VerdictSession::new(Arc::clone(&remote));
    session
        .execute("SELECT count(*) AS n FROM order_products")
        .unwrap();
    let response = session.execute("SHOW STATS").unwrap();
    let stats = stat_map(response.table().expect("SHOW STATS returns a table"));

    assert!(stats["backend_queries"] > 0, "{stats:?}");
    assert!(
        stats["backend_remote_round_trips"] > 0,
        "remote backend must expose its round-trip counter: {stats:?}"
    );
}

/// Regression for the Impala documentation note (scrambles built with
/// `rand()` in an `ORDER BY`-free position): the dialect that disallows
/// `rand()` in `WHERE` must still build working scrambles end to end.
#[test]
fn impala_dialect_builds_usable_scrambles_without_rand_in_where() {
    let engine = seeded_engine(0.05);
    let ctx = VerdictContext::with_dialect(
        engine as Arc<dyn Backend>,
        Box::new(ImpalaDialect),
        config(),
    );

    let uniform = ctx
        .create_sample("order_products", SampleType::Uniform)
        .unwrap();
    assert!(uniform.sample_rows > 0, "empty uniform scramble");
    let ratio = uniform.sample_rows as f64 / uniform.base_rows as f64;
    assert!(
        (0.01..0.25).contains(&ratio),
        "sampling ratio {ratio:.4} far from requested 0.05"
    );

    let stratified = ctx
        .create_sample(
            "orders",
            SampleType::Stratified {
                columns: vec!["city".into()],
            },
        )
        .unwrap();
    assert!(stratified.sample_rows > 0, "empty stratified scramble");

    let answer = ctx
        .execute("SELECT count(*) AS n FROM order_products")
        .unwrap();
    assert!(
        !answer.exact,
        "Impala-built scramble must be usable for AQP"
    );
}
