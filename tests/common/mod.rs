//! Helpers shared by the integration-test binaries (`mod common;`).

// Each test binary compiles its own copy of this module and uses a subset.
#![allow(dead_code)]

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use verdictdb::{
    Backend, Engine, RemoteBackend, ServerHandle, Store, StoreHandle, Table, Value, VerdictConfig,
    VerdictContext, VerdictServer,
};

/// True when the run was asked to route every query through the wire
/// protocol (`VERDICT_BACKEND=remote`): the CI matrix leg proving the
/// middleware behaves the same when the engine sits behind a server.
pub fn remote_backend_requested() -> bool {
    std::env::var("VERDICT_BACKEND")
        .map(|v| v.eq_ignore_ascii_case("remote"))
        .unwrap_or(false)
}

/// The persistence matrix leg: with `VERDICT_DATA_DIR=<dir>` every
/// in-process test context writes its scrambles through a [`Store`] rooted
/// in a unique subdirectory of `<dir>` — the whole suite then exercises the
/// WAL-commit and write-through paths on top of its usual assertions.
/// (Ignored in remote mode: the store attaches to an in-process engine.)
pub fn data_dir_requested() -> Option<String> {
    std::env::var("VERDICT_DATA_DIR")
        .ok()
        .filter(|d| !d.is_empty())
}

/// Distinguishes contexts within one test binary; combined with the process
/// id it keeps concurrent tests from sharing a store directory.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A `VerdictContext` plus whatever keeps its backend alive: nothing extra
/// for the in-process engine, the spawned `verdict-server` in remote mode
/// (dropping the handle stops the server, so the fixture owns it).
pub struct TestContext {
    pub ctx: Arc<VerdictContext>,
    _server: Option<ServerHandle>,
}

impl Deref for TestContext {
    type Target = VerdictContext;

    fn deref(&self) -> &VerdictContext {
        &self.ctx
    }
}

/// Builds a context over `engine`, honouring `VERDICT_BACKEND`.  In remote
/// mode the engine is hidden behind a freshly spawned server and the context
/// talks to it through a [`RemoteBackend`], so every statement the
/// middleware generates is rendered to SQL and round-tripped over TCP.
pub fn context_over(engine: Arc<Engine>, config: VerdictConfig) -> TestContext {
    if remote_backend_requested() {
        let server_ctx = Arc::new(VerdictContext::new(
            engine as Arc<dyn Backend>,
            VerdictConfig::for_testing(),
        ));
        let handle = VerdictServer::bind("127.0.0.1:0", server_ctx)
            .expect("bind test server")
            .spawn()
            .expect("spawn test server");
        let remote = RemoteBackend::connect(handle.addr()).expect("connect remote backend");
        TestContext {
            ctx: Arc::new(VerdictContext::new(Arc::new(remote), config)),
            _server: Some(handle),
        }
    } else if let Some(root) = data_dir_requested() {
        let dir = std::path::Path::new(&root).join(format!(
            "t{}_{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = Arc::new(Store::open(&dir).expect("open test store"));
        engine
            .catalog()
            .set_store(Arc::clone(&store) as Arc<dyn StoreHandle>);
        let ctx = VerdictContext::with_store(engine as Arc<dyn Backend>, config, store)
            .expect("attach test store");
        TestContext {
            ctx: Arc::new(ctx),
            _server: None,
        }
    } else {
        TestContext {
            ctx: Arc::new(VerdictContext::new(engine as Arc<dyn Backend>, config)),
            _server: None,
        }
    }
}

/// Exact variant-level equality: floats compare by bit pattern, so this is
/// stricter than `Value == Value` (which coerces Int vs Float).
pub fn values_bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

/// Asserts two tables are bit-identical: same shape, same values, floats
/// compared by bits.  `context` labels the failing case (e.g. a seed).
pub fn assert_tables_bit_identical(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row counts differ");
    assert_eq!(
        a.num_columns(),
        b.num_columns(),
        "{context}: column counts differ"
    );
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert!(
                values_bit_identical(&a.value_at(r, c), &b.value_at(r, c)),
                "{context} ({r},{c}): {:?} vs {:?}",
                a.value_at(r, c),
                b.value_at(r, c)
            );
        }
    }
}
