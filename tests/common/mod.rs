//! Helpers shared by the integration-test binaries (`mod common;`).

use verdictdb::{Table, Value};

/// Exact variant-level equality: floats compare by bit pattern, so this is
/// stricter than `Value == Value` (which coerces Int vs Float).
pub fn values_bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

/// Asserts two tables are bit-identical: same shape, same values, floats
/// compared by bits.  `context` labels the failing case (e.g. a seed).
pub fn assert_tables_bit_identical(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row counts differ");
    assert_eq!(
        a.num_columns(),
        b.num_columns(),
        "{context}: column counts differ"
    );
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert!(
                values_bit_identical(&a.value_at(r, c), &b.value_at(r, c)),
                "{context} ({r},{c}): {:?} vs {:?}",
                a.value_at(r, c),
                b.value_at(r, c)
            );
        }
    }
}
