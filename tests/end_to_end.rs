//! End-to-end integration tests: the full middleware stack (parser → planner
//! → rewriter → in-memory engine → answer rewriter) against exact answers.

use std::sync::Arc;
use verdictdb::{Engine, VerdictConfig, VerdictContext, VerdictSession};

mod common;

/// Builds the test context.  Honours `VERDICT_BACKEND=remote` (see
/// `tests/common/mod.rs`): the same engine then sits behind a spawned
/// server and every statement below travels the wire protocol.
fn context(scale: f64) -> common::TestContext {
    let engine = Arc::new(Engine::with_seed(99));
    verdictdb::data::InstacartGenerator::new(scale).register(&engine);
    let mut config = VerdictConfig::default();
    config.min_table_rows = 5_000;
    config.sampling_ratio = 0.05;
    config.io_budget = 0.12;
    config.include_error_columns = false;
    config.seed = Some(17);
    let ctx = common::context_over(engine, config);
    // Sample preparation through the SQL surface, exactly as an application
    // (or a remote client) would issue it.
    let mut session = VerdictSession::new(Arc::clone(&ctx.ctx));
    for ddl in [
        "CREATE SCRAMBLE verdict_sample_order_products_uniform FROM order_products",
        "CREATE SCRAMBLE verdict_sample_orders_stratified_city FROM orders \
         METHOD stratified ON city",
        "CREATE SCRAMBLE verdict_sample_orders_hashed_order_id FROM orders \
         METHOD hashed ON order_id",
        "CREATE SCRAMBLE verdict_sample_order_products_hashed_order_id FROM order_products \
         METHOD hashed ON order_id",
    ] {
        session.execute(ddl).unwrap();
    }
    ctx
}

fn scalar(ctx: &VerdictContext, sql: &str) -> (f64, f64, bool) {
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    (
        approx.table.value(0, 0).as_f64().unwrap(),
        exact.table.value(0, 0).as_f64().unwrap(),
        approx.exact,
    )
}

#[test]
fn global_count_is_estimated_within_a_few_percent() {
    let ctx = context(0.25);
    let (approx, exact, was_exact) = scalar(&ctx, "SELECT count(*) AS n FROM order_products");
    assert!(!was_exact, "query should have been approximated");
    let rel = (approx - exact).abs() / exact;
    assert!(
        rel < 0.05,
        "relative error {rel:.4} too large ({approx} vs {exact})"
    );
}

#[test]
fn global_sum_and_avg_are_estimated_within_a_few_percent() {
    let ctx = context(0.25);
    let (approx_sum, exact_sum, _) = scalar(
        &ctx,
        "SELECT sum(price * quantity) AS rev FROM order_products",
    );
    let rel = (approx_sum - exact_sum).abs() / exact_sum;
    assert!(rel < 0.05, "sum relative error {rel:.4}");

    let (approx_avg, exact_avg, _) = scalar(&ctx, "SELECT avg(price) AS ap FROM order_products");
    let rel = (approx_avg - exact_avg).abs() / exact_avg;
    assert!(rel < 0.03, "avg relative error {rel:.4}");
}

#[test]
fn selective_predicates_are_respected() {
    let ctx = context(0.25);
    let (approx, exact, _) = scalar(
        &ctx,
        "SELECT count(*) AS n FROM order_products WHERE price > 10 AND reordered = 1",
    );
    let rel = (approx - exact).abs() / exact;
    assert!(rel < 0.08, "relative error {rel:.4} ({approx} vs {exact})");
}

#[test]
fn group_by_query_covers_all_groups_with_small_errors() {
    let ctx = context(0.25);
    let sql = "SELECT order_dow, count(*) AS n, avg(price) AS ap \
               FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
               GROUP BY order_dow ORDER BY order_dow";
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    assert!(!approx.exact);
    assert_eq!(
        approx.table.num_rows(),
        exact.table.num_rows(),
        "missing groups"
    );
    for r in 0..exact.table.num_rows() {
        assert_eq!(
            approx.table.value(r, 0).as_i64(),
            exact.table.value(r, 0).as_i64(),
            "group order mismatch"
        );
        let (a, e) = (
            approx.table.value(r, 1).as_f64().unwrap(),
            exact.table.value(r, 1).as_f64().unwrap(),
        );
        let rel = (a - e).abs() / e;
        assert!(rel < 0.25, "group count error {rel:.3} at row {r}");
    }
}

#[test]
fn join_of_two_samples_works_via_universe_samples() {
    let ctx = context(0.25);
    let sql = "SELECT count(*) AS n, avg(p.price) AS ap \
               FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id";
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    assert!(!approx.exact);
    // both sides should be answered from samples, so far fewer rows are read
    assert!(approx.rows_scanned * 4 < exact.rows_scanned);
    let (a, e) = (
        approx.table.value(0, 0).as_f64().unwrap(),
        exact.table.value(0, 0).as_f64().unwrap(),
    );
    let rel = (a - e).abs() / e;
    assert!(
        rel < 0.15,
        "join count relative error {rel:.4} ({a} vs {e})"
    );
}

#[test]
fn count_distinct_is_estimated_from_hashed_sample() {
    let ctx = context(0.25);
    let sql = "SELECT count(DISTINCT order_id) AS orders_with_items FROM order_products";
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    assert!(!approx.exact);
    let (a, e) = (
        approx.table.value(0, 0).as_f64().unwrap(),
        exact.table.value(0, 0).as_f64().unwrap(),
    );
    let rel = (a - e).abs() / e;
    assert!(
        rel < 0.15,
        "count distinct relative error {rel:.4} ({a} vs {e})"
    );
}

#[test]
fn extreme_statistics_are_exact() {
    let ctx = context(0.1);
    let sql = "SELECT max(price) AS mx, count(*) AS n FROM order_products";
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    // max must match exactly even though count is approximated
    assert_eq!(
        approx.table.value(0, 0).as_f64().unwrap(),
        exact.table.value(0, 0).as_f64().unwrap()
    );
}

#[test]
fn unsupported_queries_are_passed_through_unchanged() {
    let ctx = context(0.05);
    // no aggregates -> passthrough
    let answer = ctx
        .execute("SELECT city FROM orders GROUP BY city ORDER BY city LIMIT 3")
        .unwrap();
    assert!(answer.exact);
    assert_eq!(answer.table.num_rows(), 3);
    // DDL -> passthrough
    let answer = ctx.execute("DROP TABLE IF EXISTS not_a_table").unwrap();
    assert!(answer.exact);
}

#[test]
fn error_columns_are_attached_when_configured() {
    let engine = Arc::new(Engine::with_seed(3));
    verdictdb::data::InstacartGenerator::new(0.1).register(&engine);
    let mut config = VerdictConfig::default();
    config.min_table_rows = 5_000;
    config.sampling_ratio = 0.05;
    config.io_budget = 0.12;
    config.seed = Some(2);
    let ctx = common::context_over(engine, config);
    let mut session = VerdictSession::new(Arc::clone(&ctx.ctx));
    session
        .execute("CREATE SCRAMBLE op_scr FROM order_products METHOD uniform")
        .unwrap();

    // Error columns requested per session, through SQL.
    session.execute("SET error_columns = on").unwrap();
    let answer = session
        .execute("SELECT count(*) AS n, avg(price) AS ap FROM order_products")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(!answer.exact);
    assert!(answer.table.schema.index_of("n_err").is_some());
    assert!(answer.table.schema.index_of("ap_err").is_some());
    // estimated errors should be positive and small relative to the estimates
    let n = answer.table.value(0, 0).as_f64().unwrap();
    let n_err = answer.table.value(0, 1).as_f64().unwrap();
    assert!(n_err > 0.0 && n_err < n * 0.2);
}

#[test]
fn accuracy_contract_triggers_exact_rerun() {
    let engine = Arc::new(Engine::with_seed(8));
    verdictdb::data::InstacartGenerator::new(0.1).register(&engine);
    let mut config = VerdictConfig::default();
    config.min_table_rows = 5_000;
    config.sampling_ratio = 0.05;
    config.io_budget = 0.12;
    config.seed = Some(4);
    let ctx = common::context_over(engine, config);
    let mut session = VerdictSession::new(Arc::clone(&ctx.ctx));
    session
        .execute("CREATE SCRAMBLE op_scr FROM order_products METHOD uniform")
        .unwrap();

    // An impossible accuracy requirement: any sampling error violates it.
    session.execute("SET target_error = 0.000000001").unwrap();
    let answer = session
        .execute("SELECT avg(price) AS ap FROM order_products")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(answer.exact, "HAC should have forced an exact rerun");
    let exact = session
        .execute("BYPASS SELECT avg(price) AS ap FROM order_products")
        .unwrap()
        .into_answer()
        .unwrap();
    assert_eq!(
        answer.table.value(0, 0).as_f64().unwrap(),
        exact.table.value(0, 0).as_f64().unwrap()
    );
}

#[test]
fn high_cardinality_grouping_falls_back_to_exact() {
    let ctx = context(0.1);
    // grouping by the join key: every group has a handful of rows, AQP is useless
    let sql = "SELECT order_id, sum(price) AS s FROM order_products GROUP BY order_id ORDER BY s DESC LIMIT 5";
    let answer = ctx.execute(sql).unwrap();
    assert!(
        answer.exact,
        "expected fallback for high-cardinality grouping"
    );
}

#[test]
fn having_and_order_by_are_applied_to_the_approximate_answer() {
    let ctx = context(0.25);
    let sql = "SELECT city, count(*) AS n FROM orders o \
               INNER JOIN order_products p ON o.order_id = p.order_id \
               GROUP BY city HAVING count(*) > 100 ORDER BY n DESC";
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    assert!(!approx.exact);
    // ordering must be descending in the estimate column
    let col = approx.table.schema.index_of("n").unwrap();
    let values: Vec<f64> = (0..approx.table.num_rows())
        .map(|r| approx.table.value(r, col).as_f64().unwrap())
        .collect();
    assert!(values.windows(2).all(|w| w[0] >= w[1]));
    // the approximate row count should be close to the exact one (groups near
    // the HAVING threshold may differ)
    let diff = (approx.table.num_rows() as i64 - exact.table.num_rows() as i64).abs();
    assert!(diff <= 2, "group count differs too much: {diff}");
}

#[test]
fn flattened_comparison_subquery_is_answered() {
    let ctx = context(0.2);
    let sql = "SELECT count(*) AS n FROM order_products \
               WHERE price > (SELECT avg(price) FROM order_products)";
    let approx = ctx.execute(sql).unwrap();
    let exact = ctx.execute_exact(sql).unwrap();
    let (a, e) = (
        approx.table.value(0, 0).as_f64().unwrap(),
        exact.table.value(0, 0).as_f64().unwrap(),
    );
    let rel = (a - e).abs() / e;
    assert!(rel < 0.1, "relative error {rel:.4}");
}
