//! Execution-level coverage for incremental sample maintenance (Appendix D)
//! and for approximate-answer cache invalidation on appends and rebuilds.
//!
//! The `sample/maintenance.rs` unit tests only check the *shape* of the
//! generated SQL; these tests actually run it against the engine — which is
//! how the `SELECT *`-leaks-`verdict_rand` arity bug was caught.

use std::sync::Arc;
use verdictdb::core::sample::maintenance::Staleness;
use verdictdb::core::SampleType;
use verdictdb::{Backend, Engine, TableBuilder, VerdictConfig, VerdictContext};

fn sales_table(rows: usize, offset: usize) -> verdictdb::Table {
    TableBuilder::new()
        .int_column("id", (0..rows).map(|i| (offset + i) as i64).collect())
        .float_column(
            "price",
            (0..rows)
                .map(|i| ((offset + i) % 500) as f64 / 5.0)
                .collect(),
        )
        .str_column(
            "city",
            (0..rows)
                .map(|i| format!("city_{}", (offset + i) % 8))
                .collect(),
        )
        .build()
        .unwrap()
}

fn context_with_sales(seed: u64, cache_capacity: usize) -> (Arc<Engine>, VerdictContext) {
    let engine = Arc::new(Engine::with_seed(seed));
    engine.register_table("sales", sales_table(20_000, 0));
    let conn: Arc<dyn Backend> = engine.clone();
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = cache_capacity;
    (engine, VerdictContext::new(conn, config))
}

#[test]
fn staleness_tracks_appends_and_shrinks_end_to_end() {
    let (engine, ctx) = context_with_sales(11, 0);
    ctx.create_sample_with_ratio("sales", SampleType::Uniform, 0.2)
        .unwrap();

    let fresh = ctx.sample_staleness("sales").unwrap();
    assert_eq!(fresh.len(), 1);
    assert_eq!(fresh[0].1, Staleness::Fresh);

    engine
        .catalog()
        .append("sales", &sales_table(5_000, 20_000))
        .unwrap();
    let stale = ctx.sample_staleness("sales").unwrap();
    assert_eq!(
        stale[0].1,
        Staleness::Stale {
            appended_rows: 5_000
        }
    );

    // A shrunk base table cannot be maintained incrementally.
    engine.register_table("sales", sales_table(1_000, 0));
    let shrunk = ctx.sample_staleness("sales").unwrap();
    assert_eq!(shrunk[0].1, Staleness::RequiresRebuild);
}

#[test]
fn refresh_after_append_grows_uniform_and_stratified_samples() {
    let (_engine, ctx) = context_with_sales(13, 0);
    let uniform = ctx
        .create_sample_with_ratio("sales", SampleType::Uniform, 0.2)
        .unwrap();
    let stratified = ctx
        .create_sample_with_ratio(
            "sales",
            SampleType::Stratified {
                columns: vec!["city".into()],
            },
            0.2,
        )
        .unwrap();
    assert!(uniform.sample_rows > 0 && stratified.sample_rows > 0);

    // Stage a batch (including rows for a brand-new stratum city_new), append
    // it to the base table, then fold it into every sample.
    ctx.connection()
        .execute(
            "CREATE TABLE sales_batch AS \
             SELECT id + 20000 AS id, price, city FROM sales LIMIT 5000",
        )
        .unwrap();
    ctx.connection()
        .execute(
            "CREATE TABLE new_stratum AS \
             SELECT id + 40000 AS id, price, 'city_new' AS city FROM sales LIMIT 50",
        )
        .unwrap();
    ctx.connection()
        .execute("INSERT INTO sales_batch SELECT * FROM new_stratum")
        .unwrap();
    ctx.connection()
        .execute("INSERT INTO sales SELECT * FROM sales_batch")
        .unwrap();

    let refreshed = ctx
        .refresh_samples_after_append("sales", "sales_batch")
        .unwrap();
    assert_eq!(refreshed, 2);

    for meta in ctx.meta().samples_for("sales") {
        assert_eq!(
            meta.base_rows, 25_050,
            "recorded base size tracks the append"
        );
        let original = if meta.sample_table == uniform.sample_table {
            uniform.sample_rows
        } else {
            stratified.sample_rows
        };
        assert!(
            meta.sample_rows > original,
            "{} must gain sampled batch rows ({} vs {original})",
            meta.sample_table,
            meta.sample_rows
        );
        // The sample table stays arity-consistent and queryable.
        let r = ctx
            .connection()
            .execute(&format!("SELECT count(*) FROM {}", meta.sample_table))
            .unwrap();
        assert_eq!(
            r.table.value(0, 0).as_i64().unwrap() as u64,
            meta.sample_rows
        );
    }

    // New-stratum tuples enter the stratified sample with probability 1.0,
    // so every one of the 50 city_new rows must be present.
    let strat_meta = ctx
        .meta()
        .samples_for("sales")
        .into_iter()
        .find(|m| matches!(m.sample_type, SampleType::Stratified { .. }))
        .unwrap();
    let r = ctx
        .connection()
        .execute(&format!(
            "SELECT count(*) AS c, min(verdict_sampling_prob) AS p FROM {} WHERE city = 'city_new'",
            strat_meta.sample_table
        ))
        .unwrap();
    assert_eq!(r.table.value(0, 0).as_i64(), Some(50));
    assert_eq!(r.table.value(0, 1).as_f64(), Some(1.0));
}

#[test]
fn repeated_refresh_is_idempotent() {
    let (_engine, ctx) = context_with_sales(31, 0);
    ctx.create_sample_with_ratio("sales", SampleType::Uniform, 0.2)
        .unwrap();
    ctx.connection()
        .execute("CREATE TABLE sales_batch AS SELECT id + 20000 AS id, price, city FROM sales LIMIT 4000")
        .unwrap();
    ctx.connection()
        .execute("INSERT INTO sales SELECT * FROM sales_batch")
        .unwrap();

    assert_eq!(
        ctx.refresh_samples_after_append("sales", "sales_batch")
            .unwrap(),
        1
    );
    let after_first = ctx.meta().samples_for("sales")[0].clone();

    // A retried REFRESH (e.g. after a partial failure elsewhere) must not
    // fold the same batch in twice: the sample is already Fresh, so nothing
    // is appended and the metadata is unchanged.
    assert_eq!(
        ctx.refresh_samples_after_append("sales", "sales_batch")
            .unwrap(),
        0
    );
    let after_second = ctx.meta().samples_for("sales")[0].clone();
    assert_eq!(after_second.sample_rows, after_first.sample_rows);
    assert_eq!(after_second.base_rows, after_first.base_rows);
}

#[test]
fn refresh_with_reordered_batch_columns_does_not_corrupt_the_sample() {
    let (_engine, ctx) = context_with_sales(29, 0);
    let meta = ctx
        .create_sample_with_ratio("sales", SampleType::Uniform, 0.3)
        .unwrap();

    // Stage the batch with the SAME columns in a DIFFERENT physical order;
    // the refresh projection must follow the base table's order, not the
    // batch's, or the positional INSERT writes values into wrong columns.
    ctx.connection()
        .execute(
            "CREATE TABLE sales_batch AS \
             SELECT city, id + 20000 AS id, price FROM sales LIMIT 3000",
        )
        .unwrap();
    ctx.connection()
        .execute("INSERT INTO sales SELECT id, price, city FROM sales_batch")
        .unwrap();
    assert_eq!(
        ctx.refresh_samples_after_append("sales", "sales_batch")
            .unwrap(),
        1
    );

    // Every city value in the refreshed sample is still a real city label.
    let r = ctx
        .connection()
        .execute(&format!(
            "SELECT count(*) AS total, \
             sum(CASE WHEN city LIKE 'city_%' THEN 1 ELSE 0 END) AS well_typed \
             FROM {}",
            meta.sample_table
        ))
        .unwrap();
    let total = r.table.value(0, 0).as_i64().unwrap();
    let well_typed = r.table.value(0, 1).as_i64().unwrap();
    assert!(total > 0);
    assert_eq!(
        total, well_typed,
        "city column must hold city labels, not ids/prices"
    );
}

const REPEAT_QUERY: &str = "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city";

#[test]
fn cached_answer_is_bit_identical_and_append_invalidates_it() {
    let (engine, ctx) = context_with_sales(17, 32);
    ctx.create_sample("sales", SampleType::Uniform).unwrap();

    let first = ctx.execute(REPEAT_QUERY).unwrap();
    assert!(!first.exact && !first.cached);
    assert!(!first.errors.is_empty());

    // Repeat with different surface syntax.  Projection output names (the
    // bare `city` column, the `ap` alias) keep their case because they shape
    // the result schema; everything else folds.  Identical answer, no
    // re-execution.
    let before = ctx.cache_stats();
    let second = ctx
        .execute("select city, avg(Price) as ap from SALES group by CITY order by CITY")
        .unwrap();
    assert!(second.cached);
    assert_eq!(
        second.table, first.table,
        "estimates and intervals identical"
    );
    assert_eq!(second.errors, first.errors);
    assert_eq!(second.rewritten_sql, first.rewritten_sql);
    let after = ctx.cache_stats();
    assert_eq!(after.hits, before.hits + 1);

    // Append to the base table: the entry must be invalidated.
    engine
        .catalog()
        .append("sales", &sales_table(1_000, 20_000))
        .unwrap();
    let third = ctx.execute(REPEAT_QUERY).unwrap();
    assert!(!third.cached, "append must force recomputation");
    assert_eq!(ctx.cache_stats().invalidations, 1);
}

#[test]
fn sample_rebuild_invalidates_cached_answers() {
    let (_engine, ctx) = context_with_sales(19, 32);
    ctx.create_sample("sales", SampleType::Uniform).unwrap();
    let first = ctx.execute(REPEAT_QUERY).unwrap();
    assert!(!first.exact);
    assert!(ctx.execute(REPEAT_QUERY).unwrap().cached);

    // Rebuilding the sample bumps the sample table's data version even though
    // the base table is untouched.
    ctx.create_sample("sales", SampleType::Uniform).unwrap();
    let recomputed = ctx.execute(REPEAT_QUERY).unwrap();
    assert!(!recomputed.cached);
    assert!(ctx.cache_stats().invalidations >= 1);
}

#[test]
fn nondeterministic_and_ddl_statements_are_never_cached() {
    let (_engine, ctx) = context_with_sales(23, 32);
    let q = "SELECT count(*) AS c FROM sales WHERE rand() < 0.5";
    let a = ctx.execute(q).unwrap();
    let b = ctx.execute(q).unwrap();
    assert!(!a.cached && !b.cached, "rand() queries must re-draw");

    // rand() hiding inside a scalar subquery must also disable caching —
    // walk_query alone does not descend into predicate subqueries.
    let sub = "SELECT count(*) AS c FROM sales WHERE price * 0.01 < (SELECT rand())";
    let a = ctx.execute(sub).unwrap();
    let b = ctx.execute(sub).unwrap();
    assert!(
        !a.cached && !b.cached,
        "rand() in a subquery must re-draw, not serve a frozen first draw"
    );

    ctx.execute("CREATE TABLE copy1 AS SELECT * FROM sales LIMIT 10")
        .unwrap();
    ctx.execute("DROP TABLE copy1").unwrap();
    // Re-running the DDL must actually re-execute (a cached CREATE would error).
    ctx.execute("CREATE TABLE copy1 AS SELECT * FROM sales LIMIT 10")
        .unwrap();
    assert_eq!(ctx.cache_stats().insertions, 0);
}
