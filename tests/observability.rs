//! Observability acceptance tests: `EXPLAIN [ANALYZE]`, `SHOW PROFILE`,
//! `SHOW METRICS`, the sectioned `SHOW STATS` ordering, and the
//! `slow_query_ms` threshold.
//!
//! The load-bearing bar is the `EXPLAIN ANALYZE` contiguity invariant:
//! per-stage spans are closed back-to-back (each `begin` ends the previous
//! span at the same instant), so their durations must tile the measured
//! wall time — the test holds the span sum within 10% of `@total` (plus a
//! small absolute floor for per-span microsecond truncation).

use std::collections::HashMap;
use std::sync::Arc;
use verdictdb::core::session::{VerdictResponse, VerdictSession};
use verdictdb::{Backend, Engine, Table, TableBuilder, Value, VerdictConfig, VerdictContext};

/// Deterministic 50k-row sales table (same shape the session suite uses).
fn sales_context(seed: u64) -> Arc<VerdictContext> {
    let engine = Engine::with_seed(seed);
    let rows = 50_000usize;
    let table = TableBuilder::new()
        .int_column("id", (0..rows as i64).collect())
        .float_column(
            "price",
            (0..rows).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect(),
        )
        .str_column(
            "city",
            (0..rows).map(|i| format!("city_{}", i % 10)).collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 64;
    // Leave room in the I/O budget for a 0.05-ratio scramble, so the
    // approximate plan (and its rewrite/assemble spans) is actually taken.
    config.sampling_ratio = 0.05;
    config.io_budget = 0.12;
    Arc::new(VerdictContext::new(conn, config))
}

fn str_at(t: &Table, row: usize, col: usize) -> String {
    match t.value_at(row, col) {
        Value::Str(s) => s,
        other => panic!("expected string at ({row},{col}), got {other:?}"),
    }
}

fn int_at(t: &Table, row: usize, col: usize) -> i64 {
    t.value_at(row, col)
        .as_i64()
        .unwrap_or_else(|| panic!("expected integer at ({row},{col})"))
}

/// The `EXPLAIN ANALYZE` table as a span → (duration_us, detail) map.
fn analyze_map(t: &Table) -> HashMap<String, (i64, String)> {
    (0..t.num_rows())
        .map(|r| (str_at(t, r, 0), (int_at(t, r, 2), str_at(t, r, 3))))
        .collect()
}

fn explain_table(resp: &VerdictResponse) -> &Table {
    match resp {
        VerdictResponse::Explain(t) => t,
        other => panic!("expected an EXPLAIN response, got {}", other.kind()),
    }
}

#[test]
fn explain_analyze_spans_tile_wall_time_within_ten_percent() {
    let ctx = sales_context(11);
    let mut s = VerdictSession::new(Arc::clone(&ctx));
    s.execute("CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.05")
        .unwrap();

    for sql in [
        "EXPLAIN ANALYZE SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city",
        "EXPLAIN ANALYZE BYPASS SELECT count(*) AS n FROM sales",
        "EXPLAIN ANALYZE SHOW SCRAMBLES",
    ] {
        let resp = s.execute(sql).unwrap();
        let table = explain_table(&resp);
        let by_span = analyze_map(table);

        let total = by_span
            .get("@total")
            .unwrap_or_else(|| panic!("`{sql}`: missing @total row"))
            .0;
        assert!(total > 0, "`{sql}`: zero wall time");
        let span_sum: i64 = (0..table.num_rows())
            .filter(|&r| !str_at(table, r, 0).starts_with('@'))
            .map(|r| int_at(table, r, 2))
            .sum();
        // Spans are contiguous, so their sum tiles the wall time; allow 10%
        // plus a 16 µs floor for integer truncation across ~10 spans.
        let slack = total / 10 + 16;
        assert!(
            (span_sum - total).abs() <= slack,
            "`{sql}`: span sum {span_sum}µs vs wall {total}µs exceeds 10% (slack {slack}µs)"
        );

        // Attribution rows are always present.
        for attr in [
            "@class",
            "@cached",
            "@exact",
            "@shed_tier",
            "@backend_queries",
            "@store_pages_read",
            "@rows_returned",
            "@rows_scanned",
            "@slow",
        ] {
            assert!(by_span.contains_key(attr), "`{sql}`: missing {attr} row");
        }
    }

    // The approximate query's trace must attribute real backend work and
    // carry the rewrite pipeline stages.
    let resp = s
        .execute("EXPLAIN ANALYZE SELECT count(*) AS n FROM sales")
        .unwrap();
    let by_span = analyze_map(explain_table(&resp));
    assert_eq!(by_span["@class"].1, "query");
    assert!(
        by_span["@backend_queries"].1.parse::<u64>().unwrap() >= 1,
        "approximate execution must route at least one backend query"
    );
    for stage in [
        "canonicalize",
        "cache_probe",
        "analyze",
        "plan",
        "rewrite",
        "backend_exec",
    ] {
        assert!(by_span.contains_key(stage), "missing `{stage}` span");
    }
}

#[test]
fn explain_without_analyze_plans_without_executing() {
    let ctx = sales_context(12);
    let mut s = VerdictSession::new(Arc::clone(&ctx));
    s.execute("CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.05")
        .unwrap();
    let routed_before = ctx.backend_stats().queries_routed;

    let resp = s
        .execute("EXPLAIN SELECT count(*) AS n FROM sales")
        .unwrap();
    let table = explain_table(&resp);
    let items: Vec<String> = (0..table.num_rows()).map(|r| str_at(table, r, 0)).collect();
    assert!(items.contains(&"statement".to_string()), "{items:?}");
    assert!(items.contains(&"cacheable".to_string()), "{items:?}");
    assert!(
        items.iter().any(|i| i.starts_with("rewritten")),
        "an approximable query must show its rewritten form: {items:?}"
    );
    assert_eq!(
        ctx.backend_stats().queries_routed,
        routed_before,
        "EXPLAIN (without ANALYZE) must not execute the query"
    );
}

#[test]
fn show_profile_lists_recent_statements_most_recent_first() {
    let ctx = sales_context(13);
    let mut s = VerdictSession::new(ctx);
    s.execute("BYPASS SELECT count(*) AS n FROM sales").unwrap();
    s.execute("SELECT count(*) AS n FROM sales").unwrap();
    s.execute("SET target_error = 0.05").unwrap();

    let resp = s.execute("SHOW PROFILE LAST 2").unwrap();
    let table = match &resp {
        VerdictResponse::Profile(t) => t,
        other => panic!("expected a PROFILE response, got {}", other.kind()),
    };
    assert_eq!(table.num_rows(), 2, "LAST 2 must cap the listing");
    let cols: Vec<&str> = table
        .schema
        .fields
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert_eq!(
        cols,
        [
            "seq",
            "class",
            "total_us",
            "cached",
            "slow",
            "shed_tier",
            "spans",
            "sql"
        ]
    );
    assert!(
        int_at(table, 0, 0) > int_at(table, 1, 0),
        "profile must list most recent first"
    );
    assert_eq!(
        str_at(table, 0, 1),
        "set",
        "most recent statement is the SET"
    );
    assert_eq!(str_at(table, 1, 1), "query");
    assert!(
        !str_at(table, 0, 6).is_empty(),
        "every trace carries at least one span"
    );
}

#[test]
fn show_stats_sections_are_ordered_and_alphabetical_within() {
    let ctx = sales_context(14);
    let mut s = VerdictSession::new(ctx);
    s.execute("CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.02")
        .unwrap();
    s.execute("SELECT count(*) AS n FROM sales").unwrap();

    let resp = s.execute("SHOW STATS").unwrap();
    let table = resp.table().expect("SHOW STATS returns a table");
    let cols: Vec<&str> = table
        .schema
        .fields
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert_eq!(cols, ["section", "stat", "value"]);

    let rows: Vec<(String, String)> = (0..table.num_rows())
        .map(|r| (str_at(table, r, 0), str_at(table, r, 1)))
        .collect();

    // Section group order is pinned: cache, streams, backend (a memory-only
    // context has no store section), each internally alphabetical.
    let rank = |s: &str| match s {
        "cache" => 0u8,
        "streams" => 1,
        "backend" => 2,
        "store" => 3,
        other => panic!("unknown section {other}"),
    };
    for pair in rows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            (rank(&a.0), a.1.as_str()) < (rank(&b.0), b.1.as_str()),
            "SHOW STATS ordering violated: {a:?} before {b:?}"
        );
    }

    // The cache and streams sections are pinned exactly.
    let in_section = |name: &str| -> Vec<String> {
        rows.iter()
            .filter(|(s, _)| s == name)
            .map(|(_, k)| k.clone())
            .collect()
    };
    assert_eq!(
        in_section("cache"),
        [
            "cache_capacity",
            "cache_entries",
            "cache_evictions",
            "cache_hits",
            "cache_insertions",
            "cache_invalidations",
            "cache_misses",
        ]
    );
    assert_eq!(
        in_section("streams"),
        [
            "stream_early_stops",
            "stream_fallbacks",
            "stream_frames",
            "streams_completed",
            "streams_started",
        ]
    );
    let backend = in_section("backend");
    for stat in [
        "backend_queries",
        "backend_scan_fallbacks",
        "backend_version_fallbacks",
        "scrambles",
    ] {
        assert!(
            backend.contains(&stat.to_string()),
            "missing {stat}: {backend:?}"
        );
    }
}

#[test]
fn show_metrics_exposition_is_well_formed_and_monotone() {
    let ctx = sales_context(15);
    let mut s = VerdictSession::new(ctx);
    s.execute("SELECT count(*) AS n FROM sales").unwrap();

    let scrape = |s: &mut VerdictSession| -> String {
        match s.execute("SHOW METRICS").unwrap() {
            VerdictResponse::Metrics(text) => text,
            other => panic!("expected a METRICS response, got {}", other.kind()),
        }
    };
    let first = scrape(&mut s);

    // Every histogram family is complete: each series has a cumulative
    // bucket chain ending at +Inf plus matching _sum and _count lines.
    let series: Vec<&str> = first.lines().filter(|l| l.contains("_count{")).collect();
    assert!(!series.is_empty(), "no histogram series in:\n{first}");
    for count_line in &series {
        let series_key = count_line.split("_count{").collect::<Vec<_>>().join("{");
        let (name, label) = series_key.split_once('{').unwrap();
        let label = label.split('}').next().unwrap();
        assert!(
            first.contains(&format!("{name}_sum{{{label}}}")),
            "series {name}{{{label}}} lacks a _sum line"
        );
        assert!(
            first.contains(&format!("{name}_bucket{{{label},le=\"+Inf\"}}")),
            "series {name}{{{label}}} lacks a +Inf bucket"
        );
    }
    assert!(first.contains("# TYPE verdict_statements_total counter"));
    assert!(first.contains("verdict_cache_hits_total"));

    // Counters are monotone across scrapes, and the statement counter moves.
    let count_of = |text: &str, needle: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing counter {needle}"))
    };
    // A *different* query: repeating the first would hit the answer cache
    // and count as `query_cached` instead.
    s.execute("SELECT sum(price) AS sp FROM sales").unwrap();
    let second = scrape(&mut s);
    let key = "verdict_statements_total{class=\"query\"}";
    assert!(
        count_of(&second, key) > count_of(&first, key),
        "query counter must advance between scrapes"
    );
    let show_key = "verdict_statements_total{class=\"show\"}";
    assert!(
        count_of(&second, show_key) > count_of(&first, show_key),
        "the SHOW METRICS scrape itself is a counted statement"
    );
}

#[test]
fn slow_query_ms_threshold_flags_statements_in_profile_and_metrics() {
    let ctx = sales_context(16);
    let mut s = VerdictSession::new(Arc::clone(&ctx));

    // Threshold off: nothing is flagged slow.
    s.execute("BYPASS SELECT count(*) AS n FROM sales").unwrap();
    assert_eq!(ctx.obs().slow_queries(), 0);

    // A 1 ms threshold catches scramble construction over 50k rows.
    s.execute("SET slow_query_ms = 1").unwrap();
    s.execute("CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.05")
        .unwrap();
    assert!(
        ctx.obs().slow_queries() >= 1,
        "scramble build under a 1 ms threshold must be flagged slow"
    );
    let resp = s.execute("SHOW PROFILE LAST 50").unwrap();
    let table = resp.table().expect("profile table");
    let flagged = (0..table.num_rows())
        .any(|r| str_at(table, r, 1) == "ddl" && str_at(table, r, 4) == "true");
    assert!(flagged, "the slow DDL must carry slow=true in SHOW PROFILE");

    // `SET slow_query_ms = 0` disables the threshold again.
    s.execute("SET slow_query_ms = 0").unwrap();
    let before = ctx.obs().slow_queries();
    s.execute("BYPASS SELECT count(*) AS n FROM sales").unwrap();
    assert_eq!(ctx.obs().slow_queries(), before);
}
