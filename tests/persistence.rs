//! Restart durability end-to-end: scrambles built against a persistent
//! store must reload on a fresh process image — without rebuilding from
//! the base tables — and answer the same queries **bit-identically**,
//! one-shot and progressive alike.
//!
//! Each test simulates a restart by dropping the entire engine + context +
//! store stack and reopening the store directory from scratch, exactly the
//! sequence `verdict-server --data-dir` performs on boot.  (The real-binary
//! SIGKILL variant lives in `crates/server/tests/restart.rs`.)

use std::path::PathBuf;
use std::sync::Arc;

use verdictdb::{
    Backend, Engine, Store, StoreHandle, VerdictConfig, VerdictContext, VerdictSession,
};

mod common;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The query battery replayed before and after the restart.  Mixed shapes:
/// global aggregates, predicates, and a group-by, all answerable from the
/// uniform scramble.
const QUERIES: &[&str] = &[
    "SELECT count(*) AS n FROM order_products",
    "SELECT sum(price * quantity) AS rev, avg(price) AS ap FROM order_products",
    "SELECT count(*) AS n FROM order_products WHERE price > 10 AND reordered = 1",
    "SELECT reordered, count(*) AS n, avg(price) AS ap FROM order_products \
     GROUP BY reordered ORDER BY reordered",
];

fn fresh_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::with_seed(99));
    verdictdb::data::InstacartGenerator::new(0.12).register(&engine);
    engine
}

fn config() -> VerdictConfig {
    let mut config = VerdictConfig::default();
    config.min_table_rows = 5_000;
    config.sampling_ratio = 0.1;
    config.io_budget = 0.12;
    config.include_error_columns = false;
    config.seed = Some(17);
    // Small frames so the cold-start stream provably refines step by step
    // (the scramble at this scale is a few thousand rows).
    config.stream_block_rows = 2_048;
    config
}

/// Opens the store at `dir`, attaches it to a fresh engine's catalog, and
/// builds a context over both — the cold-start path.
fn open_stack(dir: &PathBuf) -> (Arc<Engine>, Arc<Store>, VerdictContext) {
    let engine = fresh_engine();
    let store = Arc::new(Store::open(dir).expect("open store"));
    engine
        .catalog()
        .set_store(Arc::clone(&store) as Arc<dyn StoreHandle>);
    let conn: Arc<dyn Backend> = engine.clone();
    let ctx = VerdictContext::with_store(conn, config(), Arc::clone(&store))
        .expect("reload persisted metadata");
    (engine, store, ctx)
}

#[test]
fn scrambles_survive_restart_bit_identically() {
    if common::remote_backend_requested() {
        return; // the store attaches to an in-process engine only
    }
    let dir = tempdir("roundtrip");

    // First life: build the scramble (persisting through the WAL), answer
    // the battery, remember every answer table.
    let before: Vec<verdictdb::Table> = {
        let (_engine, _store, ctx) = open_stack(&dir);
        assert!(ctx.meta().all().is_empty(), "fresh store must start empty");
        let ctx = Arc::new(ctx);
        let mut session = VerdictSession::new(Arc::clone(&ctx));
        session
            .execute("CREATE SCRAMBLE verdict_sample_order_products_uniform FROM order_products")
            .expect("create scramble");
        QUERIES
            .iter()
            .map(|q| {
                let answer = ctx.execute(q).expect("query before restart");
                assert!(!answer.exact, "query must be approximated: {q}");
                answer.table
            })
            .collect()
    }; // entire stack dropped here — the "crash"

    // Second life: reopen the directory.  The scramble and its metadata
    // must come back without any CREATE SCRAMBLE, and the store must have
    // actually been read (i.e. this is disk serving, not a rebuild).
    let (_engine, store, ctx) = open_stack(&dir);
    let metas = ctx.meta().all();
    assert_eq!(metas.len(), 1, "persisted scramble metadata must reload");
    assert_eq!(
        metas[0].sample_table,
        "verdict_sample_order_products_uniform"
    );
    assert!(
        StoreHandle::contains(store.as_ref(), "verdict_sample_order_products_uniform"),
        "scramble table must exist on disk"
    );

    for (q, expected) in QUERIES.iter().zip(&before) {
        let after = ctx.execute(q).expect("query after restart").table;
        common::assert_tables_bit_identical(expected, &after, q);
    }
    assert!(
        store.stats().pages_read > 0,
        "answers must have been served off disk pages"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_start_stream_matches_one_shot_bit_for_bit() {
    if common::remote_backend_requested() {
        return;
    }
    let dir = tempdir("stream");

    {
        let (_engine, _store, ctx) = open_stack(&dir);
        let ctx = Arc::new(ctx);
        let mut session = VerdictSession::new(Arc::clone(&ctx));
        session
            .execute("CREATE SCRAMBLE verdict_sample_order_products_uniform FROM order_products")
            .expect("create scramble");
    }

    // Cold start: the progressive stream must read blocks straight off disk
    // (multiple refinement frames, not a one-shot fallback) and its final
    // frame must equal the one-shot answer bit for bit.
    let (_engine, _store, ctx) = open_stack(&dir);
    let ctx = Arc::new(ctx);
    let mut session = VerdictSession::new(Arc::clone(&ctx));
    const Q: &str = "STREAM SELECT count(*) AS n, avg(price) AS ap FROM order_products";
    let frames: Vec<_> = session
        .stream(Q)
        .expect("open stream")
        .collect::<Result<Vec<_>, _>>()
        .expect("stream frames");
    assert!(
        frames.len() > 1,
        "cold-start stream must refine progressively, got {} frame(s)",
        frames.len()
    );
    let last = frames.last().expect("at least one frame");
    assert!(last.last);

    let one_shot = ctx
        .execute("SELECT count(*) AS n, avg(price) AS ap FROM order_products")
        .expect("one-shot");
    common::assert_tables_bit_identical(
        &one_shot.table,
        &last.answer.table,
        "final stream frame vs one-shot",
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refresh_appends_persist_across_restart() {
    if common::remote_backend_requested() {
        return;
    }
    let dir = tempdir("refresh");

    // Build, then append a batch to the base table and REFRESH: the grown
    // scramble and its updated metadata must both survive the restart.
    let (sample_rows_before, appended_before) = {
        let (engine, _store, ctx) = open_stack(&dir);
        ctx.create_sample("order_products", verdictdb::core::SampleType::Uniform)
            .expect("create sample");

        let base = engine.catalog().get("order_products").expect("base table");
        let batch = base.take(&(0..512).collect::<Vec<usize>>());
        engine.register_table("op_batch", batch.clone());
        engine
            .catalog()
            .append("order_products", &batch)
            .expect("append to base");
        let refreshed = ctx
            .refresh_samples_after_append("order_products", "op_batch")
            .expect("refresh");
        assert_eq!(refreshed, 1);
        let meta = &ctx.meta().all()[0];
        assert!(meta.appended_rows > 0, "refresh must mark the append");
        (meta.sample_rows, meta.appended_rows)
    };

    let (_engine, store, ctx) = open_stack(&dir);
    let metas = ctx.meta().all();
    assert_eq!(metas.len(), 1);
    assert_eq!(metas[0].sample_rows, sample_rows_before);
    assert_eq!(metas[0].appended_rows, appended_before);
    assert_eq!(
        StoreHandle::row_count(store.as_ref(), &metas[0].sample_table),
        Some(sample_rows_before),
        "on-disk scramble must include the refreshed rows"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_sample_removes_it_durably() {
    if common::remote_backend_requested() {
        return;
    }
    let dir = tempdir("drop");

    {
        let (_engine, _store, ctx) = open_stack(&dir);
        ctx.create_sample("order_products", verdictdb::core::SampleType::Uniform)
            .expect("create sample");
        assert_eq!(ctx.drop_samples("order_products").expect("drop"), 1);
    }

    let (_engine, store, ctx) = open_stack(&dir);
    assert!(
        ctx.meta().all().is_empty(),
        "dropped scramble must stay dropped after restart"
    );
    assert!(
        !StoreHandle::contains(store.as_ref(), "verdict_sample_order_products_uniform"),
        "dropped scramble's table must not survive on disk"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
