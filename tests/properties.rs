//! Property-based tests on the statistical and structural invariants of the
//! middleware: the Lemma 1 staircase guarantee, estimator consistency, SQL
//! round-tripping of generated statements, and sample-size behaviour.

use proptest::prelude::*;
use verdictdb::core::estimate::{
    clt_interval, default_subsample_size, variational_subsampling_interval,
};
use verdictdb::core::stats::{build_staircase, lemma1_g, normal_critical_value, staircase_probability};
use verdictdb::sql::{parse_statement, print_statement, GenericDialect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: with p = f_m(n), the normal-approximated 1-δ lower tail of
    /// Binomial(n, p) is at least m, and p is never below the naive m/n.
    #[test]
    fn staircase_probability_satisfies_lemma1(m in 1u64..500, extra in 1u64..10_000) {
        let n = m + extra;
        let delta = 0.001;
        let p = staircase_probability(m, n, delta);
        prop_assert!(p > 0.0 && p <= 1.0);
        prop_assert!(p >= m as f64 / n as f64 - 1e-12);
        if p < 1.0 {
            prop_assert!(lemma1_g(p, n as f64, delta) >= m as f64 - 1e-6);
        }
    }

    /// The staircase CASE steps are monotone: larger strata get smaller
    /// sampling probabilities.
    #[test]
    fn staircase_steps_are_monotone(m in 10u64..200, max in 1_000u64..1_000_000) {
        let steps = build_staircase(m, max, 0.001);
        for w in steps.windows(2) {
            prop_assert!(w[0].threshold > w[1].threshold);
            prop_assert!(w[0].probability <= w[1].probability + 1e-9);
        }
    }

    /// The variational-subsampling point estimate equals the sample mean and
    /// its interval contains that mean.
    #[test]
    fn variational_estimate_is_the_sample_mean(values in proptest::collection::vec(-1000.0f64..1000.0, 100..2000)) {
        let ns = default_subsample_size(values.len());
        let ci = variational_subsampling_interval(&values, ns, 0.95, 42);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((ci.estimate - mean).abs() < 1e-9);
        prop_assert!(ci.lower <= ci.estimate + 1e-9);
        prop_assert!(ci.upper >= ci.estimate - 1e-9);
    }

    /// Variational-subsampling intervals are in the same ballpark as CLT
    /// intervals (they estimate the same asymptotic distribution).
    #[test]
    fn variational_interval_tracks_clt(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..5000)
            .map(|_| {
                let z: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
                10.0 + 10.0 * z
            })
            .collect();
        let clt = clt_interval(&values, 0.95);
        let vs = variational_subsampling_interval(&values, default_subsample_size(values.len()), 0.95, seed);
        prop_assert!(vs.half_width() < clt.half_width() * 4.0);
        prop_assert!(vs.half_width() > clt.half_width() / 4.0);
    }

    /// Normal critical values grow with the confidence level.
    #[test]
    fn critical_values_are_monotone(c1 in 0.5f64..0.99, delta in 0.001f64..0.009) {
        let c2 = (c1 + delta).min(0.999);
        prop_assert!(normal_critical_value(c2) >= normal_critical_value(c1));
    }

    /// Printing and re-parsing a parsed statement is a fixpoint (printer
    /// stability over the grammar of generated SELECTs).
    #[test]
    fn printer_is_stable_for_generated_selects(
        col in "[a-c]",
        table in "[t-v]",
        threshold in 0i64..1000,
        limit in 1u64..50,
    ) {
        let sql = format!(
            "SELECT {col}, count(*) AS cnt FROM {table} WHERE {col} > {threshold} GROUP BY {col} ORDER BY cnt DESC LIMIT {limit}"
        );
        let stmt = parse_statement(&sql).unwrap();
        let printed = print_statement(&stmt, &GenericDialect);
        let reparsed = parse_statement(&printed).unwrap();
        prop_assert_eq!(print_statement(&reparsed, &GenericDialect), printed);
    }
}

#[test]
fn sample_tables_shrink_with_the_requested_ratio() {
    use std::sync::Arc;
    use verdictdb::core::sample::SampleType;
    use verdictdb::{Connection, Engine, VerdictConfig, VerdictContext};

    let engine = Arc::new(Engine::with_seed(5));
    verdictdb::data::InstacartGenerator::new(0.1).register(&engine);
    let conn: Arc<dyn Connection> = engine;
    let mut config = VerdictConfig::default();
    config.min_table_rows = 1_000;
    let ctx = VerdictContext::new(conn, config);

    let base_rows = ctx.connection().table_row_count("order_products").unwrap() as f64;
    for ratio in [0.01, 0.05, 0.2] {
        ctx.drop_samples("order_products").unwrap();
        let meta = ctx
            .create_sample_with_ratio("order_products", SampleType::Uniform, ratio)
            .unwrap();
        let actual = meta.sample_rows as f64 / base_rows;
        assert!(
            (actual - ratio).abs() < ratio * 0.5 + 0.01,
            "requested ratio {ratio}, got {actual}"
        );
    }
}
