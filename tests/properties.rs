//! Property-based tests on the statistical and structural invariants of the
//! middleware, plus the kernel-correctness properties of the typed-columnar
//! engine: the vectorized kernels must agree with a scalar `Value`-based
//! reference evaluator on randomized columns including NULLs.
//!
//! The external property-testing harness is unavailable offline, so the
//! properties run as seeded randomized loops: every case is deterministic
//! given the seed, and failures print the seed of the offending case.

mod common;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use verdictdb::core::estimate::{
    clt_interval, default_subsample_size, variational_subsampling_interval,
};
use verdictdb::core::stats::{
    build_staircase, lemma1_g, normal_critical_value, staircase_probability,
};
use verdictdb::engine::expr::{eval_expr, EvalContext};
use verdictdb::engine::functions::like_match;
use verdictdb::engine::{Column, Table, TableBuilder, Value};
use verdictdb::sql::ast::{BinaryOp, CastType, Expr, Literal, UnaryOp};
use verdictdb::sql::{parse_expression, parse_statement, print_statement, GenericDialect};

// ===========================================================================
// Vectorized kernels vs scalar reference evaluator
// ===========================================================================

/// Scalar reference evaluation of one expression over one row of values —
/// the semantics of the engine's pre-columnar `Vec<Value>` evaluator.
fn reference_eval_row(expr: &Expr, table: &Table, row: usize) -> Value {
    match expr {
        Expr::Column { table: q, name } => {
            let idx = table
                .schema
                .resolve(q.as_deref(), name)
                .expect("column resolves");
            table.value_at(row, idx)
        }
        Expr::Literal(lit) => match lit {
            Literal::Null => Value::Null,
            Literal::Boolean(b) => Value::Bool(*b),
            Literal::Integer(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::String(s) => Value::Str(s.clone()),
        },
        Expr::Nested(e) => reference_eval_row(e, table, row),
        Expr::UnaryOp { op, expr } => {
            let v = reference_eval_row(expr, table, row);
            match op {
                UnaryOp::Not => match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                },
                UnaryOp::Minus => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    _ => Value::Null,
                },
                UnaryOp::Plus => v,
            }
        }
        Expr::BinaryOp { left, op, right } => {
            let l = reference_eval_row(left, table, row);
            let r = reference_eval_row(right, table, row);
            match op {
                BinaryOp::And => match (l.as_bool(), r.as_bool()) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                },
                BinaryOp::Or => match (l.as_bool(), r.as_bool()) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                },
                BinaryOp::Concat => match (l.as_str_lossy(), r.as_str_lossy()) {
                    (Some(a), Some(b)) => Value::Str(format!("{a}{b}")),
                    _ => Value::Null,
                },
                op if op.is_comparison() => match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinaryOp::Eq => ord == Ordering::Equal,
                        BinaryOp::NotEq => ord != Ordering::Equal,
                        BinaryOp::Lt => ord == Ordering::Less,
                        BinaryOp::LtEq => ord != Ordering::Greater,
                        BinaryOp::Gt => ord == Ordering::Greater,
                        BinaryOp::GtEq => ord != Ordering::Less,
                        _ => unreachable!(),
                    }),
                },
                _ => match (&l, &r) {
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    (Value::Int(a), Value::Int(b)) => match op {
                        BinaryOp::Plus => Value::Int(a.wrapping_add(*b)),
                        BinaryOp::Minus => Value::Int(a.wrapping_sub(*b)),
                        BinaryOp::Multiply => Value::Int(a.wrapping_mul(*b)),
                        BinaryOp::Divide => {
                            if *b == 0 {
                                Value::Null
                            } else {
                                Value::Float(*a as f64 / *b as f64)
                            }
                        }
                        BinaryOp::Modulo => {
                            if *b == 0 {
                                Value::Null
                            } else {
                                Value::Int(a % b)
                            }
                        }
                        _ => unreachable!(),
                    },
                    (a, b) => {
                        let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                        match op {
                            BinaryOp::Plus => Value::Float(x + y),
                            BinaryOp::Minus => Value::Float(x - y),
                            BinaryOp::Multiply => Value::Float(x * y),
                            BinaryOp::Divide => {
                                if y == 0.0 {
                                    Value::Null
                                } else {
                                    Value::Float(x / y)
                                }
                            }
                            BinaryOp::Modulo => {
                                if y == 0.0 {
                                    Value::Null
                                } else {
                                    Value::Float(x % y)
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                },
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = reference_eval_row(expr, table, row);
            Value::Bool(v.is_null() != *negated)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let target = reference_eval_row(expr, table, row);
            if target.is_null() {
                return Value::Null;
            }
            let found = list
                .iter()
                .any(|e| reference_eval_row(e, table, row) == target);
            Value::Bool(found != *negated)
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = reference_eval_row(expr, table, row);
            let lo = reference_eval_row(low, table, row);
            let hi = reference_eval_row(high, table, row);
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Value::Bool(inside != *negated)
                }
                _ => Value::Null,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = reference_eval_row(expr, table, row);
            let p = reference_eval_row(pattern, table, row);
            match (v.as_str_lossy(), p.as_str_lossy()) {
                (Some(text), Some(pat)) => Value::Bool(like_match(&text, &pat) != *negated),
                _ => Value::Null,
            }
        }
        Expr::Cast { expr, data_type } => {
            let v = reference_eval_row(expr, table, row);
            if v.is_null() {
                return Value::Null;
            }
            match data_type {
                CastType::Integer => match &v {
                    Value::Str(s) => s
                        .trim()
                        .parse::<i64>()
                        .map(Value::Int)
                        .unwrap_or(Value::Null),
                    _ => v.as_i64().map(Value::Int).unwrap_or(Value::Null),
                },
                CastType::Double => match &v {
                    Value::Str(s) => s
                        .trim()
                        .parse::<f64>()
                        .map(Value::Float)
                        .unwrap_or(Value::Null),
                    _ => v.as_f64().map(Value::Float).unwrap_or(Value::Null),
                },
                CastType::Varchar => v.as_str_lossy().map(Value::Str).unwrap_or(Value::Null),
                CastType::Boolean => v.as_bool().map(Value::Bool).unwrap_or(Value::Null),
            }
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            for (w, t) in when_then {
                let fire = match operand {
                    Some(op) => {
                        let ov = reference_eval_row(op, table, row);
                        !ov.is_null() && ov == reference_eval_row(w, table, row)
                    }
                    None => reference_eval_row(w, table, row).as_bool().unwrap_or(false),
                };
                if fire {
                    return reference_eval_row(t, table, row);
                }
            }
            match else_expr {
                Some(e) => reference_eval_row(e, table, row),
                None => Value::Null,
            }
        }
        other => panic!("reference evaluator does not support {other:?}"),
    }
}

/// Builds a random table with nullable int, float, string, and bool columns.
fn random_table(rng: &mut StdRng, rows: usize) -> Table {
    let a: Vec<Option<i64>> = (0..rows)
        .map(|_| (!rng.gen_bool(0.15)).then(|| rng.gen_range(-20..20i64)))
        .collect();
    let b: Vec<Option<f64>> = (0..rows)
        .map(|_| (!rng.gen_bool(0.15)).then(|| (rng.gen_range(-10.0..10.0f64) * 4.0).round() / 4.0))
        .collect();
    let s: Vec<Option<String>> = (0..rows)
        .map(|_| {
            (!rng.gen_bool(0.15)).then(|| {
                let len = rng.gen_range(0..4usize);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0..3u32) as u8) as char)
                    .collect()
            })
        })
        .collect();
    let c: Vec<Option<bool>> = (0..rows)
        .map(|_| (!rng.gen_bool(0.15)).then(|| rng.gen_bool(0.5)))
        .collect();
    TableBuilder::new()
        .opt_int_column("a", a)
        .opt_float_column("b", b)
        .opt_str_column("s", s)
        .column("c", Column::from_opt_bool(c))
        .build()
        .unwrap()
}

/// The expression corpus: arithmetic, comparison, boolean logic, NULL tests,
/// BETWEEN / IN / LIKE / CASE / CAST, across every column type.
const KERNEL_EXPRESSIONS: &[&str] = &[
    "a + 7",
    "a - b",
    "a * a",
    "b * 2.5 + a",
    "a / b",
    "b / (a - a)",
    "a % 3",
    "-b",
    "-a",
    "a = 5",
    "a != b",
    "b < 0.5",
    "a >= b",
    "s = 'ab'",
    "s < 'b'",
    "s = a",
    "c AND b > 0",
    "c OR a < 0",
    "NOT c",
    "a IS NULL",
    "b IS NOT NULL",
    "a BETWEEN -5 AND 5",
    "b BETWEEN a AND 5.0",
    "a IN (1, 2, 3)",
    "s IN ('a', 'ab', 'ba')",
    "s NOT IN ('b')",
    "s LIKE 'a%'",
    "s LIKE '_b'",
    "CASE WHEN a > 0 THEN b ELSE -b END",
    "CASE WHEN b IS NULL THEN 'none' WHEN b > 0 THEN 'pos' ELSE 'neg' END",
    "CAST(a AS DOUBLE)",
    "CAST(b AS BIGINT)",
    "CAST(a AS VARCHAR)",
    "CAST(s AS BIGINT)",
    "s || 'x'",
    "a + b * 2 > 3 AND NOT (s = 'ab')",
];

#[test]
fn vectorized_kernels_agree_with_scalar_reference_on_random_columns() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = rng.gen_range(1..200usize);
        let table = random_table(&mut rng, rows);
        for sql in KERNEL_EXPRESSIONS {
            let expr = parse_expression(sql).unwrap();
            let mut rng_fn = || 0.5f64;
            let mut ctx = EvalContext {
                table: &table,
                rng: &mut rng_fn,
            };
            let vectorized = eval_expr(&expr, &mut ctx)
                .unwrap_or_else(|e| panic!("seed {seed}: `{sql}` failed to evaluate: {e}"));
            assert_eq!(vectorized.len(), rows, "seed {seed}: `{sql}` wrong length");
            for row in 0..rows {
                let expected = reference_eval_row(&expr, &table, row);
                let got = vectorized.value_at(row);
                assert_eq!(
                    got,
                    expected,
                    "seed {seed}, row {row}: `{sql}` diverged (row values: {:?})",
                    table.row(row)
                );
            }
        }
    }
}

#[test]
fn filter_masks_agree_with_scalar_reference() {
    for seed in 100..112u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng, 150);
        for sql in [
            "b > 0 AND a < 10",
            "s LIKE 'a%' OR c",
            "a IS NOT NULL AND b < 2.0",
        ] {
            let expr = parse_expression(sql).unwrap();
            let mut rng_fn = || 0.5f64;
            let mut ctx = EvalContext {
                table: &table,
                rng: &mut rng_fn,
            };
            let col = eval_expr(&expr, &mut ctx).unwrap();
            let mask = verdictdb::engine::kernels::column_to_mask(&col);
            for row in 0..table.num_rows() {
                let expected = reference_eval_row(&expr, &table, row)
                    .as_bool()
                    .unwrap_or(false);
                assert_eq!(
                    mask.get(row),
                    expected,
                    "seed {seed}, row {row}: `{sql}` mask diverged"
                );
            }
        }
    }
}

#[test]
fn packed_selection_vectors_agree_with_scalar_reference() {
    use verdictdb::engine::kernels;
    use verdictdb::engine::ThreadPool;

    // Random tables (NULL-bearing columns) plus one morsel-crossing size so
    // the parallel word-aligned concatenation path actually runs.
    let sizes: Vec<(u64, usize)> = (300..312u64)
        .map(|seed| (seed, (seed as usize * 37) % 400))
        .chain([(900u64, verdictdb::engine::MORSEL_ROWS + 137)])
        .collect();
    for (seed, rows) in sizes {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng, rows);
        let a = &table.columns[0];
        let b = &table.columns[1];
        let c = &table.columns[3];
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            for op in [BinaryOp::Gt, BinaryOp::Eq, BinaryOp::LtEq] {
                let mask = kernels::par_filter_mask(a, op, b, &pool);
                assert_eq!(mask.len(), rows);
                for row in 0..rows {
                    let expected = table.value_at(row, 0).sql_cmp(&table.value_at(row, 1)).map(
                        |ord| match op {
                            BinaryOp::Gt => ord == Ordering::Greater,
                            BinaryOp::Eq => ord == Ordering::Equal,
                            BinaryOp::LtEq => ord != Ordering::Greater,
                            _ => unreachable!(),
                        },
                    );
                    assert_eq!(
                        mask.get(row),
                        expected.unwrap_or(false),
                        "seed {seed}, row {row}, {op:?}, {threads} thread(s): \
                         packed mask diverged (NULL must deselect)"
                    );
                }
                assert_eq!(
                    mask.count(),
                    (0..rows).filter(|&r| mask.get(r)).count(),
                    "popcount must match per-bit reads"
                );
            }
            // Bool column → mask: NULL and false both deselect.
            let cmask = kernels::par_column_to_mask(c, &pool);
            for row in 0..rows {
                let expected = table.value_at(row, 3).as_bool() == Some(true);
                assert_eq!(
                    cmask.get(row),
                    expected,
                    "seed {seed}, row {row}: bool mask"
                );
            }
            // AND / OR combine word-wise; the reference combines per element.
            let m1 = kernels::par_filter_mask(a, BinaryOp::Gt, b, &pool);
            let m2 = cmask.clone();
            let anded = m1.and(&m2);
            let ored = m1.or(&m2);
            for row in 0..rows {
                assert_eq!(anded.get(row), m1.get(row) && m2.get(row));
                assert_eq!(ored.get(row), m1.get(row) || m2.get(row));
            }
            // Edge masks: nothing selected, everything selected.
            let zero = Column::repeat(&Value::Int(0), rows);
            let one = Column::repeat(&Value::Int(1), rows);
            let none = kernels::par_filter_mask(&zero, BinaryOp::Gt, &one, &pool);
            assert_eq!(none.count(), 0);
            assert!(none.indices().is_empty());
            let all = kernels::par_filter_mask(&one, BinaryOp::Gt, &zero, &pool);
            assert_eq!(all.count(), rows);
            assert_eq!(all.indices(), (0..rows).collect::<Vec<_>>());
        }
    }
}

#[test]
fn grouping_strategies_agree_with_scalar_reference() {
    use verdictdb::engine::kernels::group_rows_with;
    use verdictdb::engine::{GroupStrategy, ThreadPool};

    // Scalar reference: first-appearance grouping over stringified key
    // tuples.  Every strategy (hash, dict, radix, auto) at every pool size
    // must reproduce it exactly — gids AND representatives.
    // Canonical key part matching the engine's grouping equality
    // (`loose_eq_rows`): floats use IEEE `==` with NaNs grouped together,
    // so -0.0 keys like 0.0 and every NaN keys alike.
    let key_part = |v: &Value| match v {
        Value::Float(f) if f.is_nan() => "F:NaN".to_string(),
        Value::Float(f) if *f == 0.0 => "F:0".to_string(),
        other => format!("{other:?}"),
    };
    let reference = |table: &Table, cols: &[usize]| {
        let mut first: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut gids = Vec::new();
        let mut reps = Vec::new();
        for row in 0..table.num_rows() {
            let key = cols
                .iter()
                .map(|&c| key_part(&table.value_at(row, c)))
                .collect::<Vec<_>>()
                .join("|");
            let next = first.len();
            let gid = *first.entry(key).or_insert_with(|| {
                reps.push(row);
                next
            });
            gids.push(gid);
        }
        (gids, reps)
    };
    let sizes: Vec<(u64, usize)> = (400..406u64)
        .map(|seed| (seed, 37 + (seed as usize * 53) % 300))
        .chain([(901u64, verdictdb::engine::MORSEL_ROWS + 211)])
        .collect();
    for (seed, rows) in sizes {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng, rows);
        // Key sets: dict-eligible (nullable int + bool), dict-ineligible
        // (float + string → hash/radix fallback), single wide int.
        for cols in [vec![0usize, 3], vec![1, 2], vec![0]] {
            let key_cols: Vec<Column> = cols.iter().map(|&c| table.columns[c].clone()).collect();
            let (ref_gids, ref_reps) = reference(&table, &cols);
            for threads in [1usize, 4] {
                let pool = ThreadPool::new(threads);
                for strategy in [
                    GroupStrategy::Auto,
                    GroupStrategy::Hash,
                    GroupStrategy::Dict,
                    GroupStrategy::Radix,
                ] {
                    pool.set_group_strategy(strategy);
                    let g = group_rows_with(&key_cols, rows, &pool);
                    assert_eq!(
                        g.gids, ref_gids,
                        "seed {seed}, cols {cols:?}, {strategy}, {threads} thread(s): gids"
                    );
                    assert_eq!(
                        g.representatives, ref_reps,
                        "seed {seed}, cols {cols:?}, {strategy}, {threads} thread(s): reps"
                    );
                }
            }
        }
    }
}

#[test]
fn late_materialized_progressive_filter_agrees_with_reference() {
    use verdictdb::engine::{Backend, Engine};

    const Q: &str = "SELECT count(*) AS n, sum(b) AS s FROM t WHERE a > 0 AND c";
    for seed in 500..508u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = 1 + (seed as usize * 41) % 400;
        let table = random_table(&mut rng, rows);
        // Scalar reference: SQL three-valued AND keeps a row only when both
        // conjuncts are TRUE (NULL deselects).
        let expected_count = (0..rows)
            .filter(|&row| {
                table.value_at(row, 0).as_i64().map(|v| v > 0) == Some(true)
                    && table.value_at(row, 3).as_bool() == Some(true)
            })
            .count() as i64;
        for threads in [1usize, 4] {
            let e = Engine::with_seed(seed);
            e.set_parallelism(threads);
            e.register_table("t", table.clone());
            let one_shot = e.execute_sql(Q).unwrap().table;
            let mut scan = e.open_block_scan(Q).expect("progressive shape");
            while !scan.done() {
                scan.advance(64).unwrap();
            }
            let streamed = scan.snapshot().unwrap().table;
            assert_eq!(
                streamed.value_at(0, 0),
                Value::Int(expected_count),
                "seed {seed}, {threads} thread(s): late-materialized count"
            );
            assert!(
                common::values_bit_identical(&streamed.value_at(0, 0), &one_shot.value_at(0, 0))
                    && common::values_bit_identical(
                        &streamed.value_at(0, 1),
                        &one_shot.value_at(0, 1)
                    ),
                "seed {seed}, {threads} thread(s): streamed answer must be \
                 bit-identical to one-shot execution"
            );
        }
    }
}

#[test]
fn vectorized_aggregation_agrees_with_scalar_reference() {
    use verdictdb::engine::Engine;
    for seed in 200..208u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng, 300);
        // scalar reference: per-group accumulation over materialised values
        let mut sums: std::collections::HashMap<String, (f64, i64, Option<f64>, Option<f64>)> =
            std::collections::HashMap::new();
        for row in 0..table.num_rows() {
            let key = match table.value_at(row, 0) {
                Value::Null => "<null>".to_string(),
                v => v.to_string(),
            };
            let entry = sums.entry(key).or_insert((0.0, 0, None, None));
            if let Some(x) = table.value_at(row, 1).as_f64() {
                entry.0 += x;
                entry.1 += 1;
                entry.2 = Some(entry.2.map_or(x, |m: f64| m.min(x)));
                entry.3 = Some(entry.3.map_or(x, |m: f64| m.max(x)));
            }
        }
        // vectorized path: the real engine executing SQL over the table
        let engine = Engine::with_seed(seed);
        engine.register_table("t", table.clone());
        let out = engine
            .execute_sql("SELECT a, sum(b), count(b), min(b), max(b) FROM t GROUP BY a")
            .unwrap()
            .table;
        assert_eq!(
            out.num_rows(),
            sums.len(),
            "seed {seed}: group count diverged"
        );
        for row in 0..out.num_rows() {
            let key = match out.value_at(row, 0) {
                Value::Null => "<null>".to_string(),
                v => v.to_string(),
            };
            let (sum, count, min, max) = sums[&key];
            if count == 0 {
                assert!(
                    out.value_at(row, 1).is_null(),
                    "seed {seed}: sum of empty group"
                );
                assert_eq!(out.value_at(row, 2), Value::Int(0));
                assert!(out.value_at(row, 3).is_null());
            } else {
                let got_sum = out.value_at(row, 1).as_f64().unwrap();
                assert!(
                    (got_sum - sum).abs() < 1e-9,
                    "seed {seed}, group {key}: sum {got_sum} vs {sum}"
                );
                assert_eq!(out.value_at(row, 2), Value::Int(count));
                assert_eq!(out.value_at(row, 3).as_f64(), min);
                assert_eq!(out.value_at(row, 4).as_f64(), max);
            }
        }
    }
}

/// Morsel-parallel execution must be **bit-identical** to serial execution:
/// the same queries over the same nullable columns, run once with a 1-thread
/// pool and once with a 4-thread pool, must produce exactly the same tables —
/// float cells compared by bit pattern, not tolerance.
#[test]
fn parallel_kernels_agree_exactly_with_serial_on_nullable_columns() {
    use verdictdb::engine::Engine;

    let queries = [
        "SELECT a, count(*), sum(b), avg(b), min(b), max(b), stddev(b) FROM t GROUP BY a",
        "SELECT count(*) AS n, sum(b) AS s FROM t WHERE b > 0 AND a IS NOT NULL",
        "SELECT DISTINCT a FROM t",
        "SELECT t1.a, sum(t2.b) AS s FROM t AS t1 INNER JOIN t AS t2 ON t1.a = t2.a GROUP BY t1.a",
        "SELECT a, median(b) AS m FROM t GROUP BY a HAVING count(*) > 2",
    ];
    let assert_tables_bit_equal =
        |sql: &str, s: &verdictdb::engine::Table, p: &verdictdb::engine::Table| {
            assert_eq!(s.num_rows(), p.num_rows(), "`{sql}`: row count diverged");
            assert_eq!(
                s.num_columns(),
                p.num_columns(),
                "`{sql}`: column count diverged"
            );
            for r in 0..s.num_rows() {
                for c in 0..s.num_columns() {
                    let (a, b) = (s.value_at(r, c), p.value_at(r, c));
                    match (&a, &b) {
                        (Value::Float(x), Value::Float(y)) => assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "`{sql}` ({r},{c}): {x} vs {y} differ in bits"
                        ),
                        _ => assert_eq!(a, b, "`{sql}` ({r},{c})"),
                    }
                }
            }
        };

    // Small randomized tables (single morsel: the inline path) ...
    for seed in 300..306u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = rng.gen_range(50..400usize);
        let table = random_table(&mut rng, rows);
        let serial = Engine::with_seed_and_parallelism(seed, 1);
        let parallel = Engine::with_seed_and_parallelism(seed, 4);
        serial.register_table("t", table.clone());
        parallel.register_table("t", table.clone());
        for sql in queries {
            let s = serial.execute_sql(sql).unwrap().table;
            let p = parallel.execute_sql(sql).unwrap().table;
            assert_tables_bit_equal(sql, &s, &p);
        }
    }

    // ... and one multi-morsel table (>64K rows) exercising partial-state
    // merges in the grouped aggregates, filters, and the join build.  The
    // self-join is skipped here: with ~40 distinct keys it would materialise
    // hundreds of millions of rows; the join path instead joins against a
    // small deduplicated dimension built from the same data.
    let mut rng = StdRng::seed_from_u64(777);
    let big = random_table(&mut rng, 150_000);
    let serial = Engine::with_seed_and_parallelism(9, 1);
    let parallel = Engine::with_seed_and_parallelism(9, 4);
    serial.register_table("t", big.clone());
    parallel.register_table("t", big);
    let big_queries = [
        queries[0],
        queries[1],
        queries[2],
        queries[4],
        "SELECT d.a, sum(t.b) AS s FROM t \
         INNER JOIN (SELECT DISTINCT a FROM t) AS d ON t.a = d.a GROUP BY d.a",
    ];
    for sql in big_queries {
        let s = serial.execute_sql(sql).unwrap().table;
        let p = parallel.execute_sql(sql).unwrap().table;
        assert_tables_bit_equal(sql, &s, &p);
    }
}

// ===========================================================================
// Statistical invariants (previously proptest-based, now seeded loops)
// ===========================================================================

/// Lemma 1: with p = f_m(n), the normal-approximated 1-δ lower tail of
/// Binomial(n, p) is at least m, and p is never below the naive m/n.
#[test]
fn staircase_probability_satisfies_lemma1() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..64 {
        let m = rng.gen_range(1..500u64);
        let n = m + rng.gen_range(1..10_000u64);
        let delta = 0.001;
        let p = staircase_probability(m, n, delta);
        assert!(p > 0.0 && p <= 1.0);
        assert!(p >= m as f64 / n as f64 - 1e-12);
        if p < 1.0 {
            assert!(
                lemma1_g(p, n as f64, delta) >= m as f64 - 1e-6,
                "m={m} n={n}"
            );
        }
    }
}

/// The staircase CASE steps are monotone: larger strata get smaller
/// sampling probabilities.
#[test]
fn staircase_steps_are_monotone() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..64 {
        let m = rng.gen_range(10..200u64);
        let max = rng.gen_range(1_000..1_000_000u64);
        let steps = build_staircase(m, max, 0.001);
        for w in steps.windows(2) {
            assert!(w[0].threshold > w[1].threshold);
            assert!(w[0].probability <= w[1].probability + 1e-9);
        }
    }
}

/// The variational-subsampling point estimate equals the sample mean and
/// its interval contains that mean.
#[test]
fn variational_estimate_is_the_sample_mean() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..64 {
        let len = rng.gen_range(100..2000usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let ns = default_subsample_size(values.len());
        let ci = variational_subsampling_interval(&values, ns, 0.95, 42);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((ci.estimate - mean).abs() < 1e-9);
        assert!(ci.lower <= ci.estimate + 1e-9);
        assert!(ci.upper >= ci.estimate - 1e-9);
    }
}

/// Variational-subsampling intervals are in the same ballpark as CLT
/// intervals (they estimate the same asymptotic distribution).
#[test]
fn variational_interval_tracks_clt() {
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..5000)
            .map(|_| {
                let z: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
                10.0 + 10.0 * z
            })
            .collect();
        let clt = clt_interval(&values, 0.95);
        let vs = variational_subsampling_interval(
            &values,
            default_subsample_size(values.len()),
            0.95,
            seed,
        );
        assert!(vs.half_width() < clt.half_width() * 4.0, "seed {seed}");
        assert!(vs.half_width() > clt.half_width() / 4.0, "seed {seed}");
    }
}

/// Normal critical values grow with the confidence level.
#[test]
fn critical_values_are_monotone() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..64 {
        let c1 = rng.gen_range(0.5..0.99f64);
        let c2 = (c1 + rng.gen_range(0.001..0.009f64)).min(0.999);
        assert!(normal_critical_value(c2) >= normal_critical_value(c1));
    }
}

/// Printing and re-parsing a parsed statement is a fixpoint (printer
/// stability over the grammar of generated SELECTs).
#[test]
fn printer_is_stable_for_generated_selects() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..64 {
        let col = ["a", "b", "c"][rng.gen_range(0..3usize)];
        let table = ["t", "u", "v"][rng.gen_range(0..3usize)];
        let threshold = rng.gen_range(0..1000i64);
        let limit = rng.gen_range(1..50u64);
        let sql = format!(
            "SELECT {col}, count(*) AS cnt FROM {table} WHERE {col} > {threshold} GROUP BY {col} ORDER BY cnt DESC LIMIT {limit}"
        );
        let stmt = parse_statement(&sql).unwrap();
        let printed = print_statement(&stmt, &GenericDialect);
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(print_statement(&reparsed, &GenericDialect), printed);
    }
}

/// Printer stability + canonical-form idempotence over randomized VerdictDB
/// control statements (scramble DDL, SET, BYPASS, STREAM, EXPLAIN
/// [ANALYZE], SHOW PROFILE/METRICS): print∘parse is a fixpoint,
/// canonicalisation is idempotent, and case-mangled spellings canonicalise
/// to the same key.
#[test]
fn control_statement_grammar_roundtrips_and_canonicalises() {
    use verdictdb::sql::canonical_sql;

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let tables = ["orders", "Order_Products", "lineitem", "T1"];
    let columns = ["city", "Order_Id", "l_returnflag", "dow"];
    let methods = ["uniform", "stratified", "hashed"];
    let options = [
        "target_error",
        "confidence",
        "cache",
        "parallelism",
        "bypass",
        "io_budget",
        "slow_query_ms",
    ];
    for case in 0..320 {
        let table = tables[rng.gen_range(0..tables.len())];
        let col_a = columns[rng.gen_range(0..columns.len())];
        let col_b = columns[rng.gen_range(0..columns.len())];
        let method = methods[rng.gen_range(0..methods.len())];
        let ratio = rng.gen_range(1..100) as f64 / 100.0;
        let sql = match case % 10 {
            0 => {
                let on = if method == "uniform" {
                    String::new()
                } else if rng.gen_bool(0.5) || col_a == col_b {
                    format!(" ON {col_a}")
                } else {
                    format!(" ON {col_a}, {col_b}")
                };
                format!("CREATE SCRAMBLE scr_{case} FROM {table} METHOD {method} RATIO {ratio}{on}")
            }
            1 => format!("CREATE SCRAMBLES FROM {table}"),
            2 => {
                let ie = if rng.gen_bool(0.5) { "IF EXISTS " } else { "" };
                if rng.gen_bool(0.5) {
                    format!("DROP SCRAMBLE {ie}scr_{case}")
                } else {
                    format!("DROP SCRAMBLES {ie}{table}")
                }
            }
            3 => {
                if rng.gen_bool(0.5) {
                    format!("REFRESH SCRAMBLES {table} FROM {table}_batch")
                } else {
                    format!("REFRESH SCRAMBLES {table}")
                }
            }
            4 => {
                let opt = options[rng.gen_range(0..options.len())];
                let value = match rng.gen_range(0..4) {
                    0 => ratio.to_string(),
                    1 => rng.gen_range(1..16i64).to_string(),
                    2 => "on".to_string(),
                    _ => "default".to_string(),
                };
                format!("SET {opt} = {value}")
            }
            5 => format!("BYPASS SELECT count(*) AS n FROM {table} WHERE {col_a} > {ratio}"),
            6 => format!("STREAM SELECT {col_a}, avg({col_b}) AS m FROM {table} GROUP BY {col_a}"),
            7 => {
                if rng.gen_bool(0.5) {
                    "SHOW SCRAMBLES".to_string()
                } else {
                    "SHOW STATS".to_string()
                }
            }
            8 => {
                let analyze = if rng.gen_bool(0.5) {
                    "EXPLAIN ANALYZE"
                } else {
                    "EXPLAIN"
                };
                match rng.gen_range(0..3) {
                    0 => format!(
                        "{analyze} SELECT count(*) AS n FROM {table} WHERE {col_a} > {ratio}"
                    ),
                    1 => format!("{analyze} BYPASS SELECT sum({col_a}) AS s FROM {table}"),
                    _ => format!("{analyze} SET target_error = {ratio}"),
                }
            }
            _ => match rng.gen_range(0..3) {
                0 => "SHOW PROFILE".to_string(),
                1 => format!("SHOW PROFILE LAST {}", rng.gen_range(1..100u64)),
                _ => "SHOW METRICS".to_string(),
            },
        };

        // print∘parse fixpoint.
        let stmt = parse_statement(&sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let printed = print_statement(&stmt, &GenericDialect);
        let reparsed =
            parse_statement(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(
            print_statement(&reparsed, &GenericDialect),
            printed,
            "printer not stable for `{sql}`"
        );

        // canonical form is idempotent …
        let canon = canonical_sql(&sql).unwrap();
        assert_eq!(canonical_sql(&canon).unwrap(), canon, "for `{sql}`");

        // … and insensitive to keyword/identifier case mangling.  Queries
        // with projection output names (the BYPASS/STREAM/EXPLAIN cases) are
        // excluded: projection aliases and bare projected columns name the
        // result schema, so their case is deliberately key-significant.
        if !matches!(case % 10, 5 | 6 | 8) {
            let mangled: String = sql
                .chars()
                .map(|c| {
                    if rng.gen_bool(0.5) {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    }
                })
                .collect();
            assert_eq!(
                canonical_sql(&mangled).unwrap(),
                canon,
                "case mangling changed the canonical key of `{sql}`"
            );
        }
    }
}

/// Log-bucketed histogram quantiles are within one power-of-two bucket of
/// the exact sample quantile: the reported value is the upper bound of the
/// bucket holding the exact rank statistic, so `exact ≤ reported ≤
/// 2·max(exact, 1)` on every sample distribution.
#[test]
fn histogram_quantiles_are_within_one_bucket_of_exact() {
    use verdictdb::core::Histogram;

    let mut rng = StdRng::seed_from_u64(0x0b5e11);
    for case in 0..64 {
        let n = rng.gen_range(1..400usize);
        // Log-uniform samples spanning the bucket range (sub-µs .. minutes).
        let samples: Vec<u64> = (0..n)
            .map(|_| {
                let exp = rng.gen_range(0..30u32);
                (1u64 << exp) / 2 + rng.gen_range(0..(1u64 << exp))
            })
            .collect();
        let hist = Histogram::new();
        for &s in &samples {
            hist.record_micros(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let reported = hist.quantile(q).expect("non-empty histogram");
            assert!(
                reported >= exact && reported <= exact.max(1) * 2,
                "case {case} q={q}: reported {reported} is not within one \
                 bucket of exact {exact} (n={n})"
            );
        }
    }
    assert_eq!(
        Histogram::new().quantile(0.5),
        None,
        "empty has no quantile"
    );
}

/// Merging per-shard histograms yields exactly the histogram of the
/// concatenated value stream: identical bucket counts, total count, sum,
/// and therefore identical quantiles — the property that makes per-shard
/// recording safe to aggregate at exposition time.
#[test]
fn merged_shard_histograms_equal_histogram_of_concatenated_stream() {
    use verdictdb::core::Histogram;

    let mut rng = StdRng::seed_from_u64(0x0b5e12);
    for case in 0..32 {
        let shards = rng.gen_range(1..9usize);
        let merged = Histogram::new();
        let whole = Histogram::new();
        for _ in 0..shards {
            let shard = Histogram::new();
            for _ in 0..rng.gen_range(0..200usize) {
                // Heavy-tailed mix: mostly fast, occasionally very slow.
                let v = if rng.gen_bool(0.9) {
                    rng.gen_range(0..10_000u64)
                } else {
                    rng.gen_range(10_000..600_000_000u64)
                };
                shard.record_micros(v);
                whole.record_micros(v);
            }
            merged.merge_from(&shard);
        }
        assert_eq!(
            merged.bucket_counts(),
            whole.bucket_counts(),
            "case {case}: bucket counts diverge after merge"
        );
        assert_eq!(merged.count(), whole.count(), "case {case}");
        assert_eq!(merged.sum_micros(), whole.sum_micros(), "case {case}");
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "case {case} q={q}");
        }
    }
}

/// print∘parse must be a fixpoint under EVERY dialect the middleware can
/// render for, not just the generic one: each dialect's identifier-quoting
/// style and random-function spelling must survive its own round trip
/// (e.g. Redshift prints `rand()` as `random()`, itself a fixpoint, and
/// re-quotes backtick identifiers with double quotes — which the lexer
/// accepts back).
#[test]
fn printer_roundtrips_under_every_dialect() {
    use verdictdb::sql::{Dialect, ImpalaDialect, RedshiftDialect, SparkSqlDialect};

    let dialects: [&dyn Dialect; 4] = [
        &GenericDialect,
        &ImpalaDialect,
        &SparkSqlDialect,
        &RedshiftDialect,
    ];
    let mut rng = StdRng::seed_from_u64(0xD1A1EC7);
    let tables = ["orders", "order_products", "`weird table`", "t1"];
    let columns = ["city", "price", "`weird col`", "order_id"];
    let aggregates = [
        "count(*)",
        "sum(price)",
        "avg(price)",
        "count(DISTINCT order_id)",
    ];
    for case in 0..128 {
        let table = tables[rng.gen_range(0..tables.len())];
        let column = columns[rng.gen_range(0..columns.len())];
        let agg = aggregates[rng.gen_range(0..aggregates.len())];
        let threshold = rng.gen_range(0..500i64);
        let sql = match case % 4 {
            0 => format!("SELECT {agg} AS m FROM {table} WHERE {column} > {threshold}"),
            1 => format!(
                "SELECT {column}, {agg} AS m FROM {table} \
                 GROUP BY {column} ORDER BY m DESC LIMIT 7"
            ),
            // rand() in a predicate: the one spelling dialects disagree on.
            2 => format!("SELECT {agg} AS m FROM {table} WHERE rand() < 0.25"),
            _ => format!(
                "SELECT {agg} AS m FROM orders a \
                 INNER JOIN order_products b ON a.order_id = b.order_id \
                 WHERE a.{column} > {threshold}",
                column = "order_id"
            ),
        };
        let stmt = parse_statement(&sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        for dialect in dialects {
            let printed = print_statement(&stmt, dialect);
            let reparsed = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("dialect {}: reparse `{printed}`: {e}", dialect.name()));
            assert_eq!(
                print_statement(&reparsed, dialect),
                printed,
                "printer not stable under dialect {} for `{sql}`",
                dialect.name()
            );
        }
    }
}

#[test]
fn sample_tables_shrink_with_the_requested_ratio() {
    use std::sync::Arc;
    use verdictdb::core::sample::SampleType;
    use verdictdb::{Backend, Engine, VerdictConfig, VerdictContext};

    let engine = Arc::new(Engine::with_seed(5));
    verdictdb::data::InstacartGenerator::new(0.1).register(&engine);
    let conn: Arc<dyn Backend> = engine;
    let mut config = VerdictConfig::default();
    config.min_table_rows = 1_000;
    let ctx = VerdictContext::new(conn, config);

    let base_rows = ctx.connection().table_row_count("order_products").unwrap() as f64;
    for ratio in [0.01, 0.05, 0.2] {
        ctx.drop_samples("order_products").unwrap();
        let meta = ctx
            .create_sample_with_ratio("order_products", SampleType::Uniform, ratio)
            .unwrap();
        let actual = meta.sample_rows as f64 / base_rows;
        assert!(
            (actual - ratio).abs() < ratio * 0.5 + 0.01,
            "requested ratio {ratio}, got {actual}"
        );
    }
}

// ===========================================================================
// Progressive streaming invariants (PR 5)
// ===========================================================================

/// Builds a deterministic serving stack at a given engine parallelism, with
/// a seeded random sales table and one 20% uniform scramble registered.
/// Identical inputs give bit-identical catalogs at any thread count.
fn streaming_stack(seed: u64, rows: usize, parallelism: usize) -> verdictdb::VerdictSession {
    use std::sync::Arc;
    use verdictdb::{Backend, Engine, VerdictConfig, VerdictContext};
    let engine = Engine::with_seed_and_parallelism(seed, parallelism);
    let mut rng = StdRng::seed_from_u64(seed);
    let table = TableBuilder::new()
        .int_column("k", (0..rows).map(|_| rng.gen_range(0..7i64)).collect())
        .float_column(
            "v",
            (0..rows).map(|_| rng.gen_range(-50.0..150.0)).collect(),
        )
        .opt_float_column(
            "w",
            (0..rows)
                .map(|_| (rng.gen::<f64>() > 0.05).then(|| rng.gen_range(0.0..10.0)))
                .collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.io_budget = 1.0;
    config.answer_cache_capacity = 0;
    let ctx = Arc::new(VerdictContext::new(conn, config));
    let mut session = verdictdb::VerdictSession::new(ctx);
    session
        .execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    session
}

/// For seeded random aggregates, the streamed final frame equals the
/// one-shot answer bit for bit at engine parallelism 1 and 4, and the
/// interval half-widths are non-increasing in expectation across frames.
#[test]
fn streamed_final_frame_is_bit_identical_to_one_shot_and_intervals_shrink() {
    let aggregates = [
        "count(*) AS c",
        "sum(v) AS s",
        "avg(v) AS a",
        "avg(w) AS aw",
        "sum(v) / count(*) AS ratio",
    ];
    let mut first_widths = 0.0f64;
    let mut last_widths = 0.0f64;
    let mut shrink_steps = 0usize;
    let mut total_steps = 0usize;
    for case in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(900 + case);
        let agg = aggregates[rng.gen_range(0..aggregates.len())];
        let grouped = rng.gen_bool(0.5);
        let query = if grouped {
            format!("SELECT k, {agg} FROM sales GROUP BY k ORDER BY k")
        } else {
            format!("SELECT {agg} FROM sales")
        };
        let rows = 8_000 + rng.gen_range(0..4_000usize);
        for parallelism in [1usize, 4] {
            // Twin stacks: stream on one, one-shot on the other.
            let mut streamer = streaming_stack(7_000 + case, rows, parallelism);
            let mut oneshot = streaming_stack(7_000 + case, rows, parallelism);
            streamer.execute("SET stream_block_rows = 300").unwrap();
            let frames: Vec<_> = streamer
                .stream(&query)
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap();
            assert!(
                frames.len() >= 4,
                "seed {case}: only {} frames",
                frames.len()
            );
            let reference = oneshot.execute(&query).unwrap().into_answer().unwrap();
            assert!(
                !reference.exact,
                "seed {case}: reference must be approximate"
            );
            let last = &frames.last().unwrap().answer;
            common::assert_tables_bit_identical(
                &last.table,
                &reference.table,
                &format!("seed {case} par {parallelism}"),
            );
            for (x, y) in last.errors.iter().zip(reference.errors.iter()) {
                assert_eq!(
                    x.max_relative_error.to_bits(),
                    y.max_relative_error.to_bits(),
                    "seed {case} par {parallelism}: intervals must match"
                );
            }
            // Interval refinement: `<col>_err` half-widths (for_testing
            // keeps error columns on) shrink in expectation as the prefix
            // grows.  Individual steps may wobble; totals must not.
            if parallelism == 1 {
                let width_of = |answer: &verdictdb::VerdictAnswer| -> f64 {
                    let mut total = 0.0;
                    for (i, f) in answer.table.schema.fields.iter().enumerate() {
                        if f.name.ends_with("_err") {
                            total += answer.table.columns[i]
                                .iter()
                                .filter_map(|v| v.as_f64())
                                .filter(|w| w.is_finite())
                                .sum::<f64>();
                        }
                    }
                    total
                };
                let widths: Vec<f64> = frames.iter().map(|f| width_of(&f.answer)).collect();
                first_widths += widths.first().unwrap();
                last_widths += widths.last().unwrap();
                for pair in widths.windows(2) {
                    total_steps += 1;
                    if pair[1] <= pair[0] + 1e-12 {
                        shrink_steps += 1;
                    }
                }
            }
        }
    }
    assert!(
        last_widths < first_widths,
        "intervals must tighten overall: first {first_widths}, last {last_widths}"
    );
    assert!(
        shrink_steps * 2 > total_steps,
        "a majority of refinement steps must tighten the interval \
         ({shrink_steps}/{total_steps})"
    );
}

// ===========================================================================
// Admission control: shed tiers and queue-watermark invariants
// ===========================================================================

#[test]
fn shed_tiers_are_monotone_and_degradation_strictly_precedes_refusal() {
    use verdictdb::core::{ShedPolicy, ShedTier};
    let mut rng = StdRng::seed_from_u64(0xAD317);
    for case in 0..200 {
        let capacity = rng.gen_range(1..=512usize);
        let policy = ShedPolicy::for_capacity(capacity);

        // Tier level is monotone non-decreasing in queue depth.
        let mut prev = ShedTier::None;
        for depth in 0..capacity {
            let tier = policy.tier_at(depth);
            assert!(
                tier.level() >= prev.level(),
                "case {case} capacity {capacity}: tier regressed at depth {depth} \
                 ({prev:?} -> {tier:?})"
            );
            prev = tier;
            assert!(
                !policy.refuses_at(depth),
                "case {case}: refusal below capacity at depth {depth}/{capacity}"
            );
        }

        // The last admissible slot always sheds at Critical — accuracy
        // degradation strictly precedes BUSY refusal at every capacity.
        assert_eq!(
            policy.tier_at(capacity - 1),
            ShedTier::Critical,
            "case {case} capacity {capacity}"
        );
        assert!(policy.refuses_at(capacity));
    }
}

#[test]
fn shed_apply_only_loosens_accuracy_and_only_shrinks_io_budget() {
    use verdictdb::core::ShedTier;
    use verdictdb::VerdictConfig;
    let mut rng = StdRng::seed_from_u64(0x5EDA);
    for case in 0..500 {
        let mut cfg = VerdictConfig::for_testing();
        cfg.max_relative_error = if rng.gen_bool(0.3) {
            None
        } else {
            Some(rng.gen_range(0.0005..0.5))
        };
        cfg.io_budget = rng.gen_range(0.001..1.0);
        let before_err = cfg.max_relative_error;
        let before_budget = cfg.io_budget;
        let tier = ShedTier::from_level(rng.gen_range(0..4usize) as u8);
        tier.apply(&mut cfg);
        if let Some(b) = before_err {
            let a = cfg
                .max_relative_error
                .expect("apply never clears an error target");
            assert!(
                a >= b,
                "case {case} {tier:?}: shedding tightened max_relative_error ({b} -> {a})"
            );
        }
        if tier != ShedTier::None {
            assert!(
                cfg.max_relative_error >= tier.target_error_floor(),
                "case {case} {tier:?}: target below the tier floor"
            );
        }
        assert!(
            cfg.io_budget <= before_budget + 1e-12,
            "case {case} {tier:?}: shedding grew io_budget ({before_budget} -> {})",
            cfg.io_budget
        );
        // Escalating the tier never produces a tighter error target: the
        // degradation ladder is itself monotone.
        let mut at_lower = VerdictConfig::for_testing();
        at_lower.max_relative_error = before_err;
        let lower = ShedTier::from_level(tier.level().saturating_sub(1));
        lower.apply(&mut at_lower);
        assert!(
            cfg.max_relative_error.unwrap_or(0.0) >= at_lower.max_relative_error.unwrap_or(0.0),
            "case {case}: tier {tier:?} gave a tighter target than {lower:?}"
        );
    }
}

#[test]
fn admission_controller_ticketing_balances_under_random_schedules() {
    use verdictdb::core::{Admission, AdmissionController, ShedPolicy, ShedTier};
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..100 {
        let capacity = rng.gen_range(1..=64usize);
        let ctl = AdmissionController::new(ShedPolicy::for_capacity(capacity));
        let arrivals = rng.gen_range(1..=400usize);
        // Outstanding tickets: every Admit must be released exactly once —
        // the model of "every admitted query gets exactly one terminal
        // frame".  Terminals here are the releases; the balance below is
        // the exactly-one property.
        let mut outstanding = 0usize;
        let mut admitted = 0u64;
        let mut refused = 0u64;
        let mut shed = 0u64;
        let mut prev_tier_at_depth: Vec<Option<ShedTier>> = vec![None; capacity + 1];
        for step in 0..arrivals {
            // Randomly complete some in-flight statements first.
            while outstanding > 0 && rng.gen_bool(0.4) {
                ctl.release();
                outstanding -= 1;
            }
            let depth_before = ctl.depth();
            assert_eq!(depth_before, outstanding, "case {case} step {step}");
            match ctl.try_admit() {
                Admission::Admit(tier) => {
                    admitted += 1;
                    outstanding += 1;
                    if tier != ShedTier::None {
                        shed += 1;
                    }
                    // BUSY only at the watermark: an admission below
                    // capacity is never refused, and the tier a depth gets
                    // is a pure function of that depth.
                    assert!(depth_before < capacity, "case {case} step {step}");
                    if let Some(prev) = prev_tier_at_depth[depth_before] {
                        assert_eq!(prev, tier, "case {case}: tier not a function of depth");
                    }
                    prev_tier_at_depth[depth_before] = Some(tier);
                }
                Admission::Refuse => {
                    refused += 1;
                    // Refusal iff the queue is at capacity.
                    assert_eq!(depth_before, capacity, "case {case} step {step}");
                }
            }
        }
        // Drain every outstanding ticket; depth must return to exactly zero.
        while outstanding > 0 {
            ctl.release();
            outstanding -= 1;
        }
        assert_eq!(ctl.depth(), 0, "case {case}: tickets leaked");
        let stats = ctl.stats();
        assert_eq!(stats.admitted, admitted, "case {case}");
        assert_eq!(stats.refused, refused, "case {case}");
        assert_eq!(stats.shed, shed, "case {case}");
        assert_eq!(
            stats.admitted + stats.refused,
            arrivals as u64,
            "case {case}: every arrival is admitted xor refused"
        );
        assert!(
            stats.peak_depth <= capacity as u64,
            "case {case}: peak depth {} exceeded capacity {capacity}",
            stats.peak_depth
        );
    }
}

#[test]
fn admission_controller_holds_capacity_under_concurrent_arrivals() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use verdictdb::core::{Admission, AdmissionController, ShedPolicy};

    let capacity = 8usize;
    let ctl = Arc::new(AdmissionController::new(ShedPolicy::for_capacity(capacity)));
    let done = Arc::new(AtomicU64::new(0));
    let threads = 6usize;
    let per_thread = 500usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let ctl = Arc::clone(&ctl);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + t as u64);
                for _ in 0..per_thread {
                    match ctl.try_admit() {
                        Admission::Admit(_) => {
                            // Depth counts this ticket, so it can never
                            // exceed capacity even under races.
                            assert!(ctl.depth() <= capacity);
                            if rng.gen_bool(0.5) {
                                std::thread::yield_now();
                            }
                            ctl.release();
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        Admission::Refuse => {
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    assert_eq!(ctl.depth(), 0, "tickets leaked across threads");
    let stats = ctl.stats();
    assert_eq!(stats.admitted, done.load(Ordering::Relaxed));
    assert_eq!(
        stats.admitted + stats.refused,
        (threads * per_thread) as u64
    );
    assert!(stats.peak_depth <= capacity as u64);
}
