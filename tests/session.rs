//! SQL-first session API end-to-end tests.
//!
//! The acceptance bar for the session surface: every capability previously
//! reachable only through Rust method calls (`create_sample*`,
//! `refresh_samples_after_append`, `drop_samples`, `execute_exact`) or
//! ad-hoc protocol verbs is reachable through **pure SQL** on a
//! [`VerdictSession`] — and the full scramble lifecycle (create → query with
//! a target error → append + refresh → show → drop) produces **bit-identical
//! answers** in-process and over a TCP connection.

use std::sync::Arc;
use verdictdb::core::session::{VerdictResponse, VerdictSession};
use verdictdb::server::{RemoteAnswer, VerdictClient, VerdictServer};
use verdictdb::{Connection, Engine, TableBuilder, Value, VerdictConfig, VerdictContext};

/// Deterministic 50k-row sales table; identical for every call with the same
/// seed, so two separately-built stacks stay bit-identical under the same
/// statement sequence.
fn sales_context(seed: u64) -> Arc<VerdictContext> {
    let engine = Engine::with_seed(seed);
    let rows = 50_000usize;
    let table = TableBuilder::new()
        .int_column("id", (0..rows as i64).collect())
        .float_column(
            "price",
            (0..rows).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect(),
        )
        .str_column(
            "city",
            (0..rows).map(|i| format!("city_{}", i % 10)).collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    let conn: Arc<dyn Connection> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 64;
    Arc::new(VerdictContext::new(conn, config))
}

fn values_bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

/// The statement script driven through both transports.  Each entry is
/// (statement, label); answers are compared pairwise by label.
const LIFECYCLE: &[&str] = &[
    "CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.01",
    "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city",
    "SET target_error = 0.0000001",
    "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city",
    "SET target_error = default",
    "BYPASS CREATE TABLE sales_batch AS SELECT id, price, city FROM sales LIMIT 2000",
    "BYPASS INSERT INTO sales SELECT * FROM sales_batch",
    "REFRESH SCRAMBLES sales FROM sales_batch",
    "SHOW SCRAMBLES",
    "SELECT count(*) AS n FROM sales",
    "DROP SCRAMBLES sales",
    "SHOW SCRAMBLES",
    "SHOW STATS",
];

/// Flattens whatever a statement produced into a comparable (columns, rows)
/// table form; non-tabular responses become a single tagged row.
fn in_process_rows(resp: &VerdictResponse) -> (Vec<String>, Vec<Vec<Value>>) {
    match resp.table() {
        Some(t) => {
            let cols = t.schema.fields.iter().map(|f| f.name.clone()).collect();
            let rows = (0..t.num_rows())
                .map(|r| {
                    (0..t.schema.fields.len())
                        .map(|c| t.value_at(r, c))
                        .collect()
                })
                .collect();
            (cols, rows)
        }
        None => (Vec::new(), Vec::new()),
    }
}

fn remote_rows(answer: &RemoteAnswer) -> (Vec<String>, Vec<Vec<Value>>) {
    (answer.columns.clone(), answer.rows.clone())
}

#[test]
fn full_scramble_lifecycle_is_bit_identical_in_process_and_over_tcp() {
    // Two identically-seeded stacks: one driven in-process, one over TCP.
    let local_ctx = sales_context(71);
    let remote_ctx = sales_context(71);
    let mut local = VerdictSession::new(Arc::clone(&local_ctx));

    let handle = VerdictServer::bind("127.0.0.1:0", remote_ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    for (i, stmt) in LIFECYCLE.iter().enumerate() {
        let local_resp = local
            .execute(stmt)
            .unwrap_or_else(|e| panic!("in-process `{stmt}` failed: {e}"));
        let remote_resp = client
            .sql(stmt)
            .unwrap_or_else(|e| panic!("remote `{stmt}` failed: {e}"));
        let (lcols, lrows) = in_process_rows(&local_resp);
        let (rcols, rrows) = remote_rows(&remote_resp);
        assert_eq!(lcols, rcols, "statement {i} `{stmt}`: column names differ");
        assert_eq!(
            lrows.len(),
            rrows.len(),
            "statement {i} `{stmt}`: row counts differ"
        );
        for (r, (lr, rr)) in lrows.iter().zip(&rrows).enumerate() {
            for (c, (lv, rv)) in lr.iter().zip(rr).enumerate() {
                assert!(
                    values_bit_identical(lv, rv),
                    "statement {i} `{stmt}` row {r} col {c}: {lv:?} != {rv:?}"
                );
            }
        }
        // Error bounds must match bit-exactly too.
        if let VerdictResponse::Answer(a) = &local_resp {
            assert_eq!(a.errors.len(), remote_resp.errors.len(), "at `{stmt}`");
            for (le, (rc, rmean, rmax)) in a.errors.iter().zip(&remote_resp.errors) {
                assert_eq!(&le.column, rc);
                assert_eq!(le.mean_relative_error.to_bits(), rmean.to_bits());
                assert_eq!(le.max_relative_error.to_bits(), rmax.to_bits());
            }
        }
    }

    client.quit().unwrap();
    handle.stop();
}

#[test]
fn lifecycle_semantics_hold_in_process() {
    let ctx = sales_context(5);
    let mut s = VerdictSession::new(Arc::clone(&ctx));

    // create: scramble is registered and usable.
    let created = s
        .execute("CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();
    let VerdictResponse::ScramblesCreated(metas) = created else {
        panic!("expected ScramblesCreated");
    };
    assert_eq!(metas[0].sample_table, "sales_scr");
    assert_eq!(metas[0].base_table, "sales");

    // query: answered approximately from the scramble.
    let approx = s
        .execute("SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(!approx.exact, "query should run on the scramble");
    assert_eq!(approx.used_samples, vec!["sales_scr".to_string()]);

    // accuracy contract: an unattainable target error forces the exact rerun,
    // without mutating any shared config.
    s.execute("SET target_error = 0.0000001").unwrap();
    let exact = s
        .execute("SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(exact.exact, "tiny target error must force the exact rerun");
    assert!(
        ctx.config().max_relative_error.is_none(),
        "session SET must not leak into the shared base config"
    );
    s.execute("SET target_error = default").unwrap();

    // append + refresh.
    s.execute("BYPASS CREATE TABLE sales_batch AS SELECT id, price, city FROM sales LIMIT 2000")
        .unwrap();
    s.execute("BYPASS INSERT INTO sales SELECT * FROM sales_batch")
        .unwrap();
    let refreshed = s
        .execute("REFRESH SCRAMBLES sales FROM sales_batch")
        .unwrap();
    assert!(matches!(refreshed, VerdictResponse::ScramblesRefreshed(1)));

    // show: one fresh row with the custom name.
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!("expected Scrambles");
    };
    assert_eq!(listing.num_rows(), 1);
    assert_eq!(listing.value(0, 0), Value::Str("sales_scr".into()));
    assert_eq!(listing.value(0, 7), Value::Str("fresh".into()));

    // drop: registry and table are gone.
    let VerdictResponse::ScramblesDropped(n) = s.execute("DROP SCRAMBLES sales").unwrap() else {
        panic!("expected ScramblesDropped");
    };
    assert_eq!(n, 1);
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!("expected Scrambles");
    };
    assert_eq!(listing.num_rows(), 0);
    assert!(
        !ctx.connection().table_exists("sales_scr"),
        "dropped scramble table must be gone from the catalog"
    );
    // A second DROP errors without IF EXISTS, succeeds with it.
    assert!(s.execute("DROP SCRAMBLES sales").is_err());
    assert!(matches!(
        s.execute("DROP SCRAMBLES IF EXISTS sales").unwrap(),
        VerdictResponse::ScramblesDropped(0)
    ));
}

#[test]
fn named_scrambles_create_methods_and_drop_by_name() {
    let ctx = sales_context(9);
    let mut s = VerdictSession::new(ctx);
    s.execute("CREATE SCRAMBLE u FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    s.execute("CREATE SCRAMBLE h FROM sales METHOD hashed RATIO 0.2 ON id")
        .unwrap();
    s.execute("CREATE SCRAMBLE st FROM sales METHOD stratified RATIO 0.2 ON city")
        .unwrap();
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert_eq!(listing.num_rows(), 3);

    // invalid combinations are rejected up front.
    assert!(s
        .execute("CREATE SCRAMBLE x FROM sales METHOD stratified")
        .is_err());
    assert!(s
        .execute("CREATE SCRAMBLE x FROM sales METHOD uniform ON city")
        .is_err());
    assert!(s.execute("CREATE SCRAMBLE x FROM sales RATIO 1.5").is_err());

    // A scramble name must never clobber a table that is not a registered
    // scramble — in particular, not the base table itself.
    let err = s
        .execute("CREATE SCRAMBLE sales FROM sales")
        .expect_err("naming the base table must be refused");
    assert!(
        err.to_string().contains("not a registered scramble"),
        "{err}"
    );
    assert!(
        s.context().connection().table_exists("sales"),
        "the refused CREATE SCRAMBLE must leave the base table intact"
    );
    // Re-creating an existing scramble under its own name still replaces it.
    assert!(matches!(
        s.execute("CREATE SCRAMBLE u FROM sales METHOD uniform RATIO 0.2")
            .unwrap(),
        VerdictResponse::ScramblesCreated(_)
    ));

    // SET values are range-checked: nonsense does not silently degrade AQP.
    assert!(s.execute("SET target_error = -0.02").is_err());
    assert!(s.execute("SET io_budget = -1").is_err());
    assert!(s.execute("SET io_budget = 1.5").is_err());
    assert!(s.execute("SET sampling_ratio = 0").is_err());
    assert!(s.execute("SET confidence = 1.5").is_err());

    let VerdictResponse::ScramblesDropped(n) = s.execute("DROP SCRAMBLE h").unwrap() else {
        panic!()
    };
    assert_eq!(n, 1);
    assert!(s.execute("DROP SCRAMBLE h").is_err());
    assert!(matches!(
        s.execute("DROP SCRAMBLE IF EXISTS h").unwrap(),
        VerdictResponse::ScramblesDropped(0)
    ));
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert_eq!(listing.num_rows(), 2);
}

#[test]
fn refresh_without_batch_rebuilds_from_current_data() {
    let ctx = sales_context(13);
    let mut s = VerdictSession::new(Arc::clone(&ctx));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();
    s.execute("BYPASS CREATE TABLE b AS SELECT id, price, city FROM sales LIMIT 5000")
        .unwrap();
    s.execute("BYPASS INSERT INTO sales SELECT * FROM b")
        .unwrap();
    // Stale now; a batchless REFRESH rebuilds rather than appends.
    let VerdictResponse::Scrambles(before) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert!(matches!(before.value(0, 7), Value::Str(st) if st.starts_with("stale")));
    assert!(matches!(
        s.execute("REFRESH SCRAMBLES sales").unwrap(),
        VerdictResponse::ScramblesRefreshed(1)
    ));
    let VerdictResponse::Scrambles(after) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert_eq!(after.value(0, 7), Value::Str("fresh".into()));
    // base_rows reflects the appended base table.
    assert_eq!(after.value(0, 6), Value::Int(55_000));
}

#[test]
fn session_options_are_isolated_and_cache_keys_respect_them() {
    let ctx = sales_context(23);
    let mut a = VerdictSession::new(Arc::clone(&ctx));
    let mut b = VerdictSession::new(Arc::clone(&ctx));
    a.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();

    const Q: &str = "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city";

    // Session A runs with error columns on; session B with defaults (from
    // for_testing they are on; B turns them off).  The two must not share a
    // cache entry: their answers have different shapes.
    b.execute("SET error_columns = off").unwrap();
    let wide = a.execute(Q).unwrap().into_answer().unwrap();
    let narrow = b.execute(Q).unwrap().into_answer().unwrap();
    assert!(wide.table.schema.fields.len() > narrow.table.schema.fields.len());
    assert!(
        !narrow.cached,
        "different options must not share cache entries"
    );

    // Repeats inside each session do hit the cache.
    assert!(a.execute(Q).unwrap().into_answer().unwrap().cached);
    assert!(b.execute(Q).unwrap().into_answer().unwrap().cached);

    // SET cache = off bypasses the shared cache for that session only.
    b.execute("SET cache = off").unwrap();
    assert!(!b.execute(Q).unwrap().into_answer().unwrap().cached);
    assert!(a.execute(Q).unwrap().into_answer().unwrap().cached);

    // Session-wide bypass mode.
    a.execute("SET bypass = on").unwrap();
    assert!(a.execute(Q).unwrap().into_answer().unwrap().exact);
    a.execute("SET bypass = off").unwrap();
    assert!(!a.execute(Q).unwrap().into_answer().unwrap().exact);

    // Unknown options fail loudly.
    assert!(a.execute("SET no_such_option = 1").is_err());
}

#[test]
fn stream_recomputes_fresh_answers() {
    let ctx = sales_context(31);
    let mut s = VerdictSession::new(ctx);
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();
    const Q: &str = "SELECT avg(price) AS ap FROM sales";
    let first = s.execute(Q).unwrap().into_answer().unwrap();
    assert!(!first.exact);
    assert!(s.execute(Q).unwrap().into_answer().unwrap().cached);
    // STREAM ignores the cached entry and recomputes.
    let streamed = s
        .execute("STREAM SELECT avg(price) AS ap FROM sales")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(!streamed.cached, "STREAM must bypass the answer cache");
    assert!(!streamed.exact);
}

#[test]
fn execute_script_runs_statement_sequences() {
    let ctx = sales_context(41);
    let mut s = VerdictSession::new(ctx);
    let responses = s
        .execute_script(
            "CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01; \
             SET confidence = 0.99; \
             SELECT avg(price) AS ap FROM sales;",
        )
        .unwrap();
    assert_eq!(responses.len(), 3);
    assert!(matches!(responses[0], VerdictResponse::ScramblesCreated(_)));
    assert!(matches!(responses[1], VerdictResponse::OptionSet { .. }));
    assert!(!responses[2].answer().unwrap().exact);
}
