//! SQL-first session API end-to-end tests.
//!
//! The acceptance bar for the session surface: every capability previously
//! reachable only through Rust method calls (`create_sample*`,
//! `refresh_samples_after_append`, `drop_samples`, `execute_exact`) or
//! ad-hoc protocol verbs is reachable through **pure SQL** on a
//! [`VerdictSession`] — and the full scramble lifecycle (create → query with
//! a target error → append + refresh → show → drop) produces **bit-identical
//! answers** in-process and over a TCP connection.

mod common;

use common::{assert_tables_bit_identical, values_bit_identical};
use std::sync::Arc;
use verdictdb::core::session::{VerdictResponse, VerdictSession};
use verdictdb::server::{RemoteAnswer, VerdictClient, VerdictServer};
use verdictdb::{Backend, Engine, TableBuilder, Value, VerdictConfig, VerdictContext};

/// Deterministic 50k-row sales table; identical for every call with the same
/// seed, so two separately-built stacks stay bit-identical under the same
/// statement sequence.
fn sales_context(seed: u64) -> Arc<VerdictContext> {
    let engine = Engine::with_seed(seed);
    let rows = 50_000usize;
    let table = TableBuilder::new()
        .int_column("id", (0..rows as i64).collect())
        .float_column(
            "price",
            (0..rows).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect(),
        )
        .str_column(
            "city",
            (0..rows).map(|i| format!("city_{}", i % 10)).collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = 64;
    Arc::new(VerdictContext::new(conn, config))
}

/// The statement script driven through both transports.  Each entry is
/// (statement, label); answers are compared pairwise by label.
const LIFECYCLE: &[&str] = &[
    "CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.01",
    "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city",
    "SET target_error = 0.0000001",
    "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city",
    "SET target_error = default",
    "BYPASS CREATE TABLE sales_batch AS SELECT id, price, city FROM sales LIMIT 2000",
    "BYPASS INSERT INTO sales SELECT * FROM sales_batch",
    "REFRESH SCRAMBLES sales FROM sales_batch",
    "SHOW SCRAMBLES",
    "SELECT count(*) AS n FROM sales",
    "DROP SCRAMBLES sales",
    "SHOW SCRAMBLES",
    "SHOW STATS",
];

/// Flattens whatever a statement produced into a comparable (columns, rows)
/// table form; non-tabular responses become a single tagged row.
fn in_process_rows(resp: &VerdictResponse) -> (Vec<String>, Vec<Vec<Value>>) {
    match resp.table() {
        Some(t) => {
            let cols = t.schema.fields.iter().map(|f| f.name.clone()).collect();
            let rows = (0..t.num_rows())
                .map(|r| {
                    (0..t.schema.fields.len())
                        .map(|c| t.value_at(r, c))
                        .collect()
                })
                .collect();
            (cols, rows)
        }
        None => (Vec::new(), Vec::new()),
    }
}

fn remote_rows(answer: &RemoteAnswer) -> (Vec<String>, Vec<Vec<Value>>) {
    (answer.columns.clone(), answer.rows.clone())
}

#[test]
fn full_scramble_lifecycle_is_bit_identical_in_process_and_over_tcp() {
    // Two identically-seeded stacks: one driven in-process, one over TCP.
    let local_ctx = sales_context(71);
    let remote_ctx = sales_context(71);
    let mut local = VerdictSession::new(Arc::clone(&local_ctx));

    let handle = VerdictServer::bind("127.0.0.1:0", remote_ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = VerdictClient::connect(handle.addr()).unwrap();

    for (i, stmt) in LIFECYCLE.iter().enumerate() {
        let local_resp = local
            .execute(stmt)
            .unwrap_or_else(|e| panic!("in-process `{stmt}` failed: {e}"));
        let remote_resp = client
            .sql(stmt)
            .unwrap_or_else(|e| panic!("remote `{stmt}` failed: {e}"));
        let (lcols, lrows) = in_process_rows(&local_resp);
        let (rcols, mut rrows) = remote_rows(&remote_resp);
        assert_eq!(lcols, rcols, "statement {i} `{stmt}`: column names differ");
        if stmt.eq_ignore_ascii_case("SHOW STATS") {
            // The server appends its own `serving` section to the sectioned
            // stats table; the core sections must still match bit-exactly.
            rrows.retain(|r| r.first() != Some(&Value::Str("serving".into())));
        }
        assert_eq!(
            lrows.len(),
            rrows.len(),
            "statement {i} `{stmt}`: row counts differ"
        );
        for (r, (lr, rr)) in lrows.iter().zip(&rrows).enumerate() {
            for (c, (lv, rv)) in lr.iter().zip(rr).enumerate() {
                assert!(
                    values_bit_identical(lv, rv),
                    "statement {i} `{stmt}` row {r} col {c}: {lv:?} != {rv:?}"
                );
            }
        }
        // Error bounds must match bit-exactly too.
        if let VerdictResponse::Answer(a) = &local_resp {
            assert_eq!(a.errors.len(), remote_resp.errors.len(), "at `{stmt}`");
            for (le, (rc, rmean, rmax)) in a.errors.iter().zip(&remote_resp.errors) {
                assert_eq!(&le.column, rc);
                assert_eq!(le.mean_relative_error.to_bits(), rmean.to_bits());
                assert_eq!(le.max_relative_error.to_bits(), rmax.to_bits());
            }
        }
    }

    client.quit().unwrap();
    handle.stop();
}

#[test]
fn lifecycle_semantics_hold_in_process() {
    let ctx = sales_context(5);
    let mut s = VerdictSession::new(Arc::clone(&ctx));

    // create: scramble is registered and usable.
    let created = s
        .execute("CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();
    let VerdictResponse::ScramblesCreated(metas) = created else {
        panic!("expected ScramblesCreated");
    };
    assert_eq!(metas[0].sample_table, "sales_scr");
    assert_eq!(metas[0].base_table, "sales");

    // query: answered approximately from the scramble.
    let approx = s
        .execute("SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(!approx.exact, "query should run on the scramble");
    assert_eq!(approx.used_samples, vec!["sales_scr".to_string()]);

    // accuracy contract: an unattainable target error forces the exact rerun,
    // without mutating any shared config.
    s.execute("SET target_error = 0.0000001").unwrap();
    let exact = s
        .execute("SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(exact.exact, "tiny target error must force the exact rerun");
    assert!(
        ctx.config().max_relative_error.is_none(),
        "session SET must not leak into the shared base config"
    );
    s.execute("SET target_error = default").unwrap();

    // append + refresh.
    s.execute("BYPASS CREATE TABLE sales_batch AS SELECT id, price, city FROM sales LIMIT 2000")
        .unwrap();
    s.execute("BYPASS INSERT INTO sales SELECT * FROM sales_batch")
        .unwrap();
    let refreshed = s
        .execute("REFRESH SCRAMBLES sales FROM sales_batch")
        .unwrap();
    assert!(matches!(refreshed, VerdictResponse::ScramblesRefreshed(1)));

    // show: one fresh row with the custom name.
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!("expected Scrambles");
    };
    assert_eq!(listing.num_rows(), 1);
    assert_eq!(listing.value(0, 0), Value::Str("sales_scr".into()));
    assert_eq!(listing.value(0, 7), Value::Str("fresh".into()));

    // drop: registry and table are gone.
    let VerdictResponse::ScramblesDropped(n) = s.execute("DROP SCRAMBLES sales").unwrap() else {
        panic!("expected ScramblesDropped");
    };
    assert_eq!(n, 1);
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!("expected Scrambles");
    };
    assert_eq!(listing.num_rows(), 0);
    assert!(
        !ctx.connection().table_exists("sales_scr"),
        "dropped scramble table must be gone from the catalog"
    );
    // A second DROP errors without IF EXISTS, succeeds with it.
    assert!(s.execute("DROP SCRAMBLES sales").is_err());
    assert!(matches!(
        s.execute("DROP SCRAMBLES IF EXISTS sales").unwrap(),
        VerdictResponse::ScramblesDropped(0)
    ));
}

#[test]
fn named_scrambles_create_methods_and_drop_by_name() {
    let ctx = sales_context(9);
    let mut s = VerdictSession::new(ctx);
    s.execute("CREATE SCRAMBLE u FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    s.execute("CREATE SCRAMBLE h FROM sales METHOD hashed RATIO 0.2 ON id")
        .unwrap();
    s.execute("CREATE SCRAMBLE st FROM sales METHOD stratified RATIO 0.2 ON city")
        .unwrap();
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert_eq!(listing.num_rows(), 3);

    // invalid combinations are rejected up front.
    assert!(s
        .execute("CREATE SCRAMBLE x FROM sales METHOD stratified")
        .is_err());
    assert!(s
        .execute("CREATE SCRAMBLE x FROM sales METHOD uniform ON city")
        .is_err());
    assert!(s.execute("CREATE SCRAMBLE x FROM sales RATIO 1.5").is_err());

    // A scramble name must never clobber a table that is not a registered
    // scramble — in particular, not the base table itself.
    let err = s
        .execute("CREATE SCRAMBLE sales FROM sales")
        .expect_err("naming the base table must be refused");
    assert!(
        err.to_string().contains("not a registered scramble"),
        "{err}"
    );
    assert!(
        s.context().connection().table_exists("sales"),
        "the refused CREATE SCRAMBLE must leave the base table intact"
    );
    // Re-creating an existing scramble under its own name still replaces it.
    assert!(matches!(
        s.execute("CREATE SCRAMBLE u FROM sales METHOD uniform RATIO 0.2")
            .unwrap(),
        VerdictResponse::ScramblesCreated(_)
    ));

    // SET values are range-checked: nonsense does not silently degrade AQP.
    assert!(s.execute("SET target_error = -0.02").is_err());
    assert!(s.execute("SET io_budget = -1").is_err());
    assert!(s.execute("SET io_budget = 1.5").is_err());
    assert!(s.execute("SET sampling_ratio = 0").is_err());
    assert!(s.execute("SET confidence = 1.5").is_err());

    let VerdictResponse::ScramblesDropped(n) = s.execute("DROP SCRAMBLE h").unwrap() else {
        panic!()
    };
    assert_eq!(n, 1);
    assert!(s.execute("DROP SCRAMBLE h").is_err());
    assert!(matches!(
        s.execute("DROP SCRAMBLE IF EXISTS h").unwrap(),
        VerdictResponse::ScramblesDropped(0)
    ));
    let VerdictResponse::Scrambles(listing) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert_eq!(listing.num_rows(), 2);
}

#[test]
fn refresh_without_batch_rebuilds_from_current_data() {
    let ctx = sales_context(13);
    let mut s = VerdictSession::new(Arc::clone(&ctx));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();
    s.execute("BYPASS CREATE TABLE b AS SELECT id, price, city FROM sales LIMIT 5000")
        .unwrap();
    s.execute("BYPASS INSERT INTO sales SELECT * FROM b")
        .unwrap();
    // Stale now; a batchless REFRESH rebuilds rather than appends.
    let VerdictResponse::Scrambles(before) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert!(matches!(before.value(0, 7), Value::Str(st) if st.starts_with("stale")));
    assert!(matches!(
        s.execute("REFRESH SCRAMBLES sales").unwrap(),
        VerdictResponse::ScramblesRefreshed(1)
    ));
    let VerdictResponse::Scrambles(after) = s.execute("SHOW SCRAMBLES").unwrap() else {
        panic!()
    };
    assert_eq!(after.value(0, 7), Value::Str("fresh".into()));
    // base_rows reflects the appended base table.
    assert_eq!(after.value(0, 6), Value::Int(55_000));
}

#[test]
fn session_options_are_isolated_and_cache_keys_respect_them() {
    let ctx = sales_context(23);
    let mut a = VerdictSession::new(Arc::clone(&ctx));
    let mut b = VerdictSession::new(Arc::clone(&ctx));
    a.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();

    const Q: &str = "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city";

    // Session A runs with error columns on; session B with defaults (from
    // for_testing they are on; B turns them off).  The two must not share a
    // cache entry: their answers have different shapes.
    b.execute("SET error_columns = off").unwrap();
    let wide = a.execute(Q).unwrap().into_answer().unwrap();
    let narrow = b.execute(Q).unwrap().into_answer().unwrap();
    assert!(wide.table.schema.fields.len() > narrow.table.schema.fields.len());
    assert!(
        !narrow.cached,
        "different options must not share cache entries"
    );

    // Repeats inside each session do hit the cache.
    assert!(a.execute(Q).unwrap().into_answer().unwrap().cached);
    assert!(b.execute(Q).unwrap().into_answer().unwrap().cached);

    // SET cache = off bypasses the shared cache for that session only.
    b.execute("SET cache = off").unwrap();
    assert!(!b.execute(Q).unwrap().into_answer().unwrap().cached);
    assert!(a.execute(Q).unwrap().into_answer().unwrap().cached);

    // Session-wide bypass mode.
    a.execute("SET bypass = on").unwrap();
    assert!(a.execute(Q).unwrap().into_answer().unwrap().exact);
    a.execute("SET bypass = off").unwrap();
    assert!(!a.execute(Q).unwrap().into_answer().unwrap().exact);

    // Unknown options fail loudly.
    assert!(a.execute("SET no_such_option = 1").is_err());
}

#[test]
fn stream_recomputes_fresh_answers() {
    let ctx = sales_context(31);
    let mut s = VerdictSession::new(ctx);
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01")
        .unwrap();
    const Q: &str = "SELECT avg(price) AS ap FROM sales";
    let first = s.execute(Q).unwrap().into_answer().unwrap();
    assert!(!first.exact);
    assert!(s.execute(Q).unwrap().into_answer().unwrap().cached);
    // STREAM ignores the cached entry and recomputes.
    let streamed = s
        .execute("STREAM SELECT avg(price) AS ap FROM sales")
        .unwrap()
        .into_answer()
        .unwrap();
    assert!(!streamed.cached, "STREAM must bypass the answer cache");
    assert!(!streamed.exact);
}

#[test]
fn execute_script_runs_statement_sequences() {
    let ctx = sales_context(41);
    let mut s = VerdictSession::new(ctx);
    let responses = s
        .execute_script(
            "CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.01; \
             SET confidence = 0.99; \
             SELECT avg(price) AS ap FROM sales;",
        )
        .unwrap();
    assert_eq!(responses.len(), 3);
    assert!(matches!(responses[0], VerdictResponse::ScramblesCreated(_)));
    assert!(matches!(responses[1], VerdictResponse::OptionSet { .. }));
    assert!(!responses[2].answer().unwrap().exact);
}

// ---------------------------------------------------------------------------
// Progressive streaming (PR 5)
// ---------------------------------------------------------------------------

#[test]
fn progressive_stream_refines_and_final_frame_matches_one_shot() {
    // Twin stacks built from the same seed and statement sequence hold
    // bit-identical data; stream on one, one-shot on the other.
    let mut a = VerdictSession::new(sales_context(77));
    let mut b = VerdictSession::new(sales_context(77));
    const SCRAMBLE: &str = "CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2";
    const Q: &str = "SELECT city, avg(price) AS ap FROM sales GROUP BY city";
    a.execute(SCRAMBLE).unwrap();
    b.execute(SCRAMBLE).unwrap();
    // Large scrambles (20% of the base) need a matching I/O budget, or the
    // planner ignores them; both sessions must agree for bit-identity.
    a.execute("SET io_budget = 1").unwrap();
    b.execute("SET io_budget = 1").unwrap();
    let one_shot = b.execute(Q).unwrap().into_answer().unwrap();
    assert!(!one_shot.exact);

    a.execute("SET stream_block_rows = 1000").unwrap();
    let stream = a.stream(Q).unwrap();
    assert!(
        stream.is_progressive(),
        "single-table mean query must stream"
    );
    let frames: Vec<_> = stream.collect::<Result<Vec<_>, _>>().unwrap();
    assert!(
        frames.len() >= 5,
        "expected many frames, got {}",
        frames.len()
    );

    // Frames refine monotonically over the scramble prefix.
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(f.index, i + 1);
        assert!(!f.answer.cached && !f.answer.exact);
        assert_eq!(f.rows_seen, f.answer.rows_scanned);
        if i > 0 {
            assert!(f.rows_seen > frames[i - 1].rows_seen);
        }
        assert_eq!(f.last, i + 1 == frames.len());
    }
    let last = frames.last().unwrap();
    assert_eq!(last.fraction, 1.0);
    assert!(!last.early_stopped);

    // The completed stream's final frame IS the one-shot answer, bit for bit.
    assert_tables_bit_identical(&last.answer.table, &one_shot.table, "stream vs one-shot");
    assert_eq!(last.answer.errors.len(), one_shot.errors.len());
    for (x, y) in last.answer.errors.iter().zip(one_shot.errors.iter()) {
        assert_eq!(x.column, y.column);
        assert_eq!(
            x.mean_relative_error.to_bits(),
            y.mean_relative_error.to_bits()
        );
        assert_eq!(
            x.max_relative_error.to_bits(),
            y.max_relative_error.to_bits()
        );
    }
}

#[test]
fn completed_stream_populates_the_answer_cache() {
    let mut s = VerdictSession::new(sales_context(78));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    const Q: &str = "SELECT avg(price) AS ap FROM sales";
    s.execute("SET io_budget = 1").unwrap();
    s.execute("SET stream_block_rows = 2000").unwrap();
    let frames: Vec<_> = s.stream(Q).unwrap().collect::<Result<Vec<_>, _>>().unwrap();
    assert!(frames.len() >= 2);
    // The next identical SELECT is served from the cache, bit-identically.
    let repeat = s.execute(Q).unwrap().into_answer().unwrap();
    assert!(repeat.cached, "completed stream must populate the cache");
    assert_tables_bit_identical(
        &repeat.table,
        &frames.last().unwrap().answer.table,
        "cache repeat",
    );
}

#[test]
fn stream_early_stops_at_target_error_and_skips_the_cache() {
    let mut s = VerdictSession::new(sales_context(79));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.5")
        .unwrap();
    const Q: &str = "SELECT sum(price) AS total FROM sales";
    s.execute("SET io_budget = 1").unwrap();
    s.execute("SET stream_block_rows = 1000").unwrap();
    s.execute("SET target_error = 0.5").unwrap();
    let frames: Vec<_> = s.stream(Q).unwrap().collect::<Result<Vec<_>, _>>().unwrap();
    let last = frames.last().unwrap();
    assert!(
        last.early_stopped && last.fraction < 1.0,
        "a loose target must stop the stream early (fraction {})",
        last.fraction
    );
    assert!(last.answer.max_relative_error() <= 0.5);
    // An early-stopped answer saw only a prefix: it must NOT be cached.
    s.execute("SET target_error = default").unwrap();
    let repeat = s.execute(Q).unwrap().into_answer().unwrap();
    assert!(!repeat.cached, "prefix answers must never enter the cache");
}

#[test]
fn stream_max_frames_caps_the_cadence_without_changing_the_answer() {
    let mut a = VerdictSession::new(sales_context(80));
    let mut b = VerdictSession::new(sales_context(80));
    const SCRAMBLE: &str = "CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2";
    const Q: &str = "SELECT city, count(*) AS n FROM sales GROUP BY city";
    a.execute(SCRAMBLE).unwrap();
    b.execute(SCRAMBLE).unwrap();
    a.execute("SET io_budget = 1").unwrap();
    b.execute("SET io_budget = 1").unwrap();
    a.execute("SET stream_block_rows = 500").unwrap();
    a.execute("SET stream_max_frames = 3").unwrap();
    let capped: Vec<_> = a.stream(Q).unwrap().collect::<Result<Vec<_>, _>>().unwrap();
    assert_eq!(capped.len(), 3, "the cap bounds the frame count");
    assert_eq!(capped.last().unwrap().fraction, 1.0);
    b.execute("SET stream_block_rows = 500").unwrap();
    let unbounded: Vec<_> = b.stream(Q).unwrap().collect::<Result<Vec<_>, _>>().unwrap();
    assert!(unbounded.len() > 3);
    assert_tables_bit_identical(
        &capped.last().unwrap().answer.table,
        &unbounded.last().unwrap().answer.table,
        "capped vs unbounded",
    );
}

#[test]
fn non_progressive_queries_fall_back_to_a_single_frame() {
    let mut s = VerdictSession::new(sales_context(81));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    // min/max is an extreme statistic: outside the progressive class.
    let stream = s.stream("SELECT max(price) AS top FROM sales").unwrap();
    assert!(!stream.is_progressive());
    let frames: Vec<_> = stream.collect::<Result<Vec<_>, _>>().unwrap();
    assert_eq!(frames.len(), 1);
    assert!(frames[0].last);
    assert_eq!(frames[0].fraction, 1.0);
    // Under session bypass every stream is one exact frame.
    s.execute("SET bypass = on").unwrap();
    let frames: Vec<_> = s
        .stream("SELECT avg(price) AS ap FROM sales")
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(frames.len(), 1);
    assert!(frames[0].answer.exact);
}

#[test]
fn show_stats_reports_stream_and_cache_counters() {
    let mut s = VerdictSession::new(sales_context(82));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    s.execute("SET io_budget = 1").unwrap();
    s.execute("SET stream_block_rows = 2000").unwrap();
    let frames: Vec<_> = s
        .stream("SELECT avg(price) AS ap FROM sales")
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    let stats = match s.execute("SHOW STATS").unwrap() {
        VerdictResponse::Stats(t) => t,
        other => panic!("expected stats, got {other:?}"),
    };
    let lookup = |name: &str| -> i64 {
        (0..stats.num_rows())
            .find(|&r| stats.value(r, 1) == Value::Str(name.into()))
            .map(|r| stats.value(r, 2).as_i64().unwrap())
            .unwrap_or_else(|| panic!("SHOW STATS is missing {name}"))
    };
    assert_eq!(lookup("streams_started"), 1);
    assert_eq!(lookup("streams_completed"), 1);
    assert_eq!(lookup("stream_frames"), frames.len() as i64);
    assert_eq!(lookup("stream_early_stops"), 0);
    assert_eq!(lookup("stream_fallbacks"), 0);
    // Cache activity counters are visible (the completed stream inserted).
    assert!(lookup("cache_insertions") >= 1);
    assert!(lookup("cache_capacity") >= 1);
}

#[test]
fn stream_statement_alias_early_stops_like_the_frame_iterator() {
    // The `STREAM <query>` statement (the single-response alias) must keep
    // the iterator's early-stop semantics: a loose target means a strict
    // prefix is read, not the whole scramble.
    let mut s = VerdictSession::new(sales_context(83));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.5")
        .unwrap();
    s.execute("SET io_budget = 1").unwrap();
    s.execute("SET stream_block_rows = 1000").unwrap();
    s.execute("SET target_error = 0.5").unwrap();
    let answer = s
        .execute("STREAM SELECT sum(price) AS total FROM sales")
        .unwrap()
        .into_answer()
        .unwrap();
    let scramble_rows = match s.execute("SHOW SCRAMBLES").unwrap() {
        VerdictResponse::Scrambles(t) => {
            let idx = t.schema.index_of("rows").unwrap();
            t.value(0, idx).as_i64().unwrap() as u64
        }
        other => panic!("expected scrambles, got {other:?}"),
    };
    assert!(
        answer.rows_scanned < scramble_rows,
        "alias must stop after a prefix ({} of {scramble_rows} rows read)",
        answer.rows_scanned
    );
    // Without a target the alias consumes everything in one frame.
    s.execute("SET target_error = default").unwrap();
    let full = s
        .execute("STREAM SELECT sum(price) AS total FROM sales")
        .unwrap()
        .into_answer()
        .unwrap();
    assert_eq!(full.rows_scanned, scramble_rows);
}

#[test]
fn appended_scrambles_decline_progressive_execution_until_rebuilt() {
    // Append maintenance puts batch rows unshuffled at the scramble's tail,
    // losing the "any prefix is a uniform subsample" property; streams must
    // fall back to one-shot answers until a rebuild restores the shuffle.
    let mut s = VerdictSession::new(sales_context(84));
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.2")
        .unwrap();
    s.execute("SET io_budget = 1").unwrap();
    s.execute("SET stream_block_rows = 1000").unwrap();
    const Q: &str = "SELECT avg(price) AS ap FROM sales";
    assert!(s.stream(Q).unwrap().is_progressive());

    // Append a batch and fold it into the scramble.
    s.execute("BYPASS CREATE TABLE batch AS SELECT id, price, city FROM sales LIMIT 5000")
        .unwrap();
    s.execute("BYPASS INSERT INTO sales SELECT * FROM batch")
        .unwrap();
    s.execute("REFRESH SCRAMBLES sales FROM batch").unwrap();
    let stream = s.stream(Q).unwrap();
    assert!(
        !stream.is_progressive(),
        "a tail-appended scramble must not stream block-by-block"
    );
    let frames: Vec<_> = stream.collect::<Result<Vec<_>, _>>().unwrap();
    assert_eq!(frames.len(), 1, "one-shot fallback is a single frame");

    // A batchless REFRESH rebuilds (and re-shuffles) the scramble.
    s.execute("REFRESH SCRAMBLES sales").unwrap();
    assert!(
        s.stream(Q).unwrap().is_progressive(),
        "a rebuilt scramble streams again"
    );
}

#[test]
fn set_group_strategy_applies_to_engine_and_preserves_answers() {
    // The knob reaches the shared engine pool, every strategy answers a
    // grouped query bit-identically, and nonsense values are refused.
    let engine = Engine::with_seed(91);
    let rows = 50_000usize;
    let table = TableBuilder::new()
        .int_column("id", (0..rows as i64).collect())
        .float_column(
            "price",
            (0..rows).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect(),
        )
        .str_column(
            "city",
            (0..rows).map(|i| format!("city_{}", i % 10)).collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    let probe = engine.clone();
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let ctx = Arc::new(VerdictContext::new(conn, VerdictConfig::for_testing()));
    let mut s = VerdictSession::new(ctx);
    s.execute("CREATE SCRAMBLE scr FROM sales METHOD uniform RATIO 0.05")
        .unwrap();

    const Q: &str = "SELECT city, avg(price) AS ap, count(*) AS n \
                     FROM sales GROUP BY city ORDER BY city";
    let reference = s.execute(Q).unwrap().into_answer().unwrap();
    for (word, expect) in [
        ("hash", verdictdb::GroupStrategy::Hash),
        ("dict", verdictdb::GroupStrategy::Dict),
        ("radix", verdictdb::GroupStrategy::Radix),
        ("auto", verdictdb::GroupStrategy::Auto),
    ] {
        s.execute(&format!("SET group_strategy = {word}")).unwrap();
        assert_eq!(probe.group_strategy(), expect, "SET must reach the pool");
        let again = s.execute(Q).unwrap().into_answer().unwrap();
        assert_tables_bit_identical(&reference.table, &again.table, &format!("strategy {word}"));
    }
    s.execute("SET group_strategy = default").unwrap();
    assert_eq!(probe.group_strategy(), verdictdb::GroupStrategy::Auto);
    assert!(s.execute("SET group_strategy = bogus").is_err());
    assert!(s.execute("SET group_strategy = 3").is_err());
}

#[test]
fn sixty_four_interleaved_multiplexed_sessions_match_in_process_bit_for_bit() {
    // Two identically-seeded stacks.  The remote one is served by the
    // multiplexed event loop with 64 concurrent connections; the local one
    // mirrors each connection with an in-process session.  The workload is
    // interleaved round-robin statement-by-statement across all 64
    // sessions, so the server constantly switches between connections —
    // and every answer must still be bit-identical to the serial
    // in-process reference.
    const SESSIONS: usize = 64;
    let local_ctx = sales_context(93);
    let remote_ctx = sales_context(93);

    let handle = VerdictServer::bind("127.0.0.1:0", remote_ctx)
        .unwrap()
        .spawn()
        .unwrap();

    // Build the scramble once per stack before the fan-out.
    let ddl = "CREATE SCRAMBLE sales_scr FROM sales METHOD uniform RATIO 0.01";
    VerdictSession::new(Arc::clone(&local_ctx))
        .execute(ddl)
        .unwrap();
    {
        let mut admin = VerdictClient::connect(handle.addr()).unwrap();
        admin.sql(ddl).unwrap();
        admin.quit().unwrap();
    }

    let mut locals: Vec<VerdictSession> = (0..SESSIONS)
        .map(|_| VerdictSession::new(Arc::clone(&local_ctx)))
        .collect();
    let mut clients: Vec<VerdictClient> = (0..SESSIONS)
        .map(|_| VerdictClient::connect(handle.addr()).unwrap())
        .collect();

    // Deterministic per-session workload: a session-specific accuracy
    // contract, two session-specific queries, and a cache-hot repeat.
    let workload = |s: usize| -> Vec<String> {
        let thr = 10.0 + (s % 16) as f64 * 5.0;
        let set = match s % 3 {
            0 => "SET target_error = 0.0001".to_string(),
            1 => "SET target_error = 0.05".to_string(),
            _ => "SET target_error = default".to_string(),
        };
        vec![
            set,
            format!(
                "SELECT city, avg(price) AS ap FROM sales WHERE price < {thr} \
                 GROUP BY city ORDER BY city"
            ),
            format!("SELECT count(*) AS n, sum(price) AS total FROM sales WHERE price < {thr}"),
            format!(
                "SELECT city, avg(price) AS ap FROM sales WHERE price < {thr} \
                 GROUP BY city ORDER BY city"
            ),
        ]
    };
    let scripts: Vec<Vec<String>> = (0..SESSIONS).map(workload).collect();
    let steps = scripts[0].len();

    for step in 0..steps {
        for s in 0..SESSIONS {
            let stmt = &scripts[s][step];
            let local_resp = locals[s]
                .execute(stmt)
                .unwrap_or_else(|e| panic!("session {s} in-process `{stmt}` failed: {e}"));
            let remote_resp = clients[s]
                .sql(stmt)
                .unwrap_or_else(|e| panic!("session {s} remote `{stmt}` failed: {e}"));
            // No load shedding under this serial drive: answers must be
            // full-accuracy, never DEGRADED.
            assert_eq!(
                remote_resp.header.degraded, 0,
                "session {s} `{stmt}` was shed under an idle queue"
            );
            let (lcols, lrows) = in_process_rows(&local_resp);
            let (rcols, rrows) = remote_rows(&remote_resp);
            assert_eq!(lcols, rcols, "session {s} step {step} `{stmt}`: columns");
            assert_eq!(
                lrows.len(),
                rrows.len(),
                "session {s} step {step} `{stmt}`: row counts"
            );
            for (r, (lr, rr)) in lrows.iter().zip(&rrows).enumerate() {
                for (c, (lv, rv)) in lr.iter().zip(rr).enumerate() {
                    assert!(
                        values_bit_identical(lv, rv),
                        "session {s} step {step} `{stmt}` row {r} col {c}: {lv:?} != {rv:?}"
                    );
                }
            }
            if let VerdictResponse::Answer(a) = &local_resp {
                assert_eq!(a.errors.len(), remote_resp.errors.len());
                for (le, (rc, rmean, rmax)) in a.errors.iter().zip(&remote_resp.errors) {
                    assert_eq!(&le.column, rc);
                    assert_eq!(le.mean_relative_error.to_bits(), rmean.to_bits());
                    assert_eq!(le.max_relative_error.to_bits(), rmax.to_bits());
                }
            }
        }
    }

    for client in clients {
        client.quit().unwrap();
    }
    handle.stop();
}
