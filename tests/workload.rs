//! Workload-level integration test: every benchmark query of the evaluation
//! (tq-* and iq-*) must run through VerdictDB, and the queries that are not
//! expected to fall back must produce approximate answers whose headline
//! aggregates stay close to the exact ones.

use std::collections::HashMap;
use std::sync::Arc;
use verdictdb::data::{instacart_queries, tpch_queries, InstacartGenerator, TpchGenerator};
use verdictdb::{Backend, Engine, VerdictConfig, VerdictContext, VerdictSession};

fn workload_context() -> Arc<VerdictContext> {
    let engine = Arc::new(Engine::with_seed(1234));
    InstacartGenerator::new(0.2).register(&engine);
    TpchGenerator::new(0.3).register(&engine);
    let conn: Arc<dyn Backend> = engine;
    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.sampling_ratio = 0.05;
    config.io_budget = 0.12;
    config.seed = Some(7);
    let ctx = Arc::new(VerdictContext::new(conn, config));

    // Sample preparation mirroring §6.1: uniform + universe samples for the
    // large fact tables, stratified samples on common grouping columns —
    // all declared as one SQL script on a session.
    let mut session = VerdictSession::new(Arc::clone(&ctx));
    session
        .execute_script(
            "CREATE SCRAMBLE verdict_sample_order_products_uniform FROM order_products;
             CREATE SCRAMBLE verdict_sample_lineitem_uniform FROM lineitem;
             CREATE SCRAMBLE verdict_sample_tpch_orders_uniform FROM tpch_orders;
             CREATE SCRAMBLE verdict_sample_orders_uniform FROM orders;
             CREATE SCRAMBLE verdict_sample_tpch_orders_hashed_o_orderkey FROM tpch_orders
               METHOD hashed ON o_orderkey;
             CREATE SCRAMBLE verdict_sample_orders_hashed_order_id FROM orders
               METHOD hashed ON order_id;
             CREATE SCRAMBLE verdict_sample_order_products_hashed_order_id FROM order_products
               METHOD hashed ON order_id;
             CREATE SCRAMBLE verdict_sample_lineitem_hashed_l_orderkey FROM lineitem
               METHOD hashed ON l_orderkey;
             CREATE SCRAMBLE verdict_sample_lineitem_stratified_l_returnflag_l_linestatus
               FROM lineitem METHOD stratified ON l_returnflag, l_linestatus;
             CREATE SCRAMBLE verdict_sample_orders_stratified_city FROM orders
               METHOD stratified ON city;",
        )
        .unwrap();
    ctx
}

#[test]
fn every_workload_query_runs_through_verdictdb() {
    let ctx = workload_context();
    let mut approximated = 0usize;
    let mut fallbacks: Vec<&str> = Vec::new();
    for q in tpch_queries().iter().chain(instacart_queries().iter()) {
        let answer = ctx
            .execute(&q.sql)
            .unwrap_or_else(|e| panic!("{} failed through VerdictDB: {e}\n{}", q.id, q.sql));
        assert!(
            answer.table.num_rows() > 0 || answer.exact,
            "{} returned no rows",
            q.id
        );
        if answer.exact {
            fallbacks.push(q.id);
        } else {
            approximated += 1;
        }
        if q.expect_fallback {
            assert!(
                answer.exact,
                "{} groups by a high-cardinality key and should have fallen back",
                q.id
            );
        }
    }
    // The bulk of the workload must actually be approximated, mirroring the
    // paper where 30 of 33 queries benefit from AQP.
    assert!(
        approximated >= 25,
        "only {approximated} queries were approximated; fallbacks: {fallbacks:?}"
    );
}

#[test]
fn approximate_answers_track_exact_answers_on_scalar_queries() {
    let ctx = workload_context();
    // Queries whose first output column is a single scalar aggregate.
    let scalar_queries = ["tq-6", "tq-19", "iq-1", "iq-2", "iq-3", "iq-8", "iq-14"];
    let all: HashMap<&str, String> = tpch_queries()
        .iter()
        .chain(instacart_queries().iter())
        .map(|q| (q.id, q.sql.clone()))
        .collect();
    for id in scalar_queries {
        let sql = &all[id];
        let approx = ctx.execute(sql).unwrap();
        let exact = ctx.execute_exact(sql).unwrap();
        let col = approx.table.num_columns() - 1; // last column is an aggregate in these queries
        let first_agg_col = approx
            .table
            .schema
            .fields
            .iter()
            .position(|f| f.data_type == verdictdb::engine::DataType::Float)
            .unwrap_or(col);
        let a = approx.table.value(0, first_agg_col).as_f64().unwrap();
        let e = exact.table.value(0, first_agg_col).as_f64().unwrap();
        let rel = if e.abs() < f64::EPSILON {
            0.0
        } else {
            (a - e).abs() / e.abs()
        };
        // At this laptop scale the samples hold only a few thousand rows, so
        // highly selective queries legitimately carry ~10-15% error; at the
        // paper's 500 GB scale the same 1% samples hold millions of rows and
        // errors drop below 3% (see EXPERIMENTS.md).
        assert!(
            rel < 0.20,
            "{id}: relative error {rel:.4} too large (approx {a}, exact {e})"
        );
    }
}

#[test]
fn sampled_queries_scan_far_fewer_rows() {
    let ctx = workload_context();
    let all: HashMap<&str, String> = tpch_queries()
        .iter()
        .chain(instacart_queries().iter())
        .map(|q| (q.id, q.sql.clone()))
        .collect();
    for id in ["tq-1", "tq-6", "iq-2", "iq-4"] {
        let sql = &all[id];
        let approx = ctx.execute(sql).unwrap();
        let exact = ctx.execute_exact(sql).unwrap();
        assert!(!approx.exact, "{id} should be approximated");
        assert!(
            approx.rows_scanned * 5 < exact.rows_scanned,
            "{id}: expected a large reduction in rows scanned ({} vs {})",
            approx.rows_scanned,
            exact.rows_scanned
        );
    }
}
